// Package depcheck is a static loop-carried dependence analyzer over the Kr
// IR. It classifies every loop region as provably parallel (no iteration of
// the loop can read a value produced by an earlier iteration), provably
// serial (a definite loop-carried flow dependence exists, reported with its
// dependence cycle and source spans), or unknown (the analysis cannot
// decide). The verdicts complement Kremlin's dynamic self-parallelism
// evidence: HCPA says a region *behaved* parallel on one input, depcheck
// says whether that is *guaranteed* for every input.
//
// The verdict semantics deliberately mirror the profiling runtime's
// dependence model: only flow (read-after-write) dependences count — anti
// and output dependences are assumed removable by privatization/renaming,
// exactly as SSA form and the shadow memory's tag rule remove them
// dynamically — and dependences broken by the induction/reduction
// annotations of internal/analysis are skipped, because the runtime breaks
// those same edges. A "parallel" verdict is therefore checkable against the
// dynamic trace: no read in the loop may observe a value written by an
// earlier iteration of the same loop instance (see kremlib's dependence
// tracer and the krfuzz soundness oracle).
//
// Three analyses feed the verdict:
//
//   - Scalar dependence on SSA: a loop-header phi that is neither an
//     induction nor a reduction variable but carries an in-loop definition
//     around the back edge is a definite cross-iteration value cycle.
//     Loop-local scalars need no treatment — mem2reg plus dead-phi pruning
//     already privatizes them per iteration.
//   - Array subscripts affine in the loop's induction variables get the
//     classic ZIV / strong-SIV / GCD dependence tests, dimension by
//     dimension; non-affine subscripts and may-aliased bases fall back to
//     "unknown".
//   - Calls use bottom-up mod/ref summaries (see modref.go), so a call
//     inside a loop only blocks the proof for the objects it actually
//     touches; rand/srand and print are serializing side effects (the
//     runtime threads an RNG-state and an I/O dependence chain through
//     them).
package depcheck

import (
	"fmt"
	"sort"

	"kremlin/internal/absint"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/regions"
	"kremlin/internal/source"
)

// Verdict classifies one loop.
type Verdict int

// The verdicts.
const (
	Unknown  Verdict = iota // cannot prove either way
	Parallel                // provably free of loop-carried flow dependences
	Serial                  // a definite loop-carried flow dependence exists
)

func (v Verdict) String() string {
	switch v {
	case Parallel:
		return "parallel"
	case Serial:
		return "serial"
	}
	return "unknown"
}

// Safety maps the verdict onto the planner's safety lattice.
func (v Verdict) Safety() regions.Safety {
	switch v {
	case Parallel:
		return regions.SafetyProven
	case Serial:
		return regions.SafetyRefuted
	}
	return regions.SafetyUnproven
}

// CauseKind names the kind of dependence (or proof blocker) found.
type CauseKind string

// The cause kinds.
const (
	CauseScalar CauseKind = "scalar-carried" // SSA value cycle through a header phi
	CauseMemory CauseKind = "memory"         // flow dependence through a memory cell
	CauseRNG    CauseKind = "rng-state"      // rand/srand serialize through the RNG state
	CauseIO     CauseKind = "ordered-io"     // print serializes through output order
	CauseCall   CauseKind = "call-effects"   // callee side effects not provably independent
)

// Cause is one dependence (for serial verdicts) or one blocker (for unknown
// verdicts), anchored to a source line.
type Cause struct {
	Kind   CauseKind
	Detail string
	Line   int // 1-based source line, 0 if unknown
}

func (c Cause) String() string {
	if c.Line > 0 {
		return fmt.Sprintf("line %d: [%s] %s", c.Line, c.Kind, c.Detail)
	}
	return fmt.Sprintf("[%s] %s", c.Kind, c.Detail)
}

// LoopReport is the verdict for one loop region.
type LoopReport struct {
	Region  *regions.Region
	Verdict Verdict
	// Causes are the definite dependences (Serial) — the offending cycle,
	// one cause per dependence, with source lines.
	Causes []Cause
	// Blockers are what kept the proof from closing (Unknown).
	Blockers []Cause
}

// Result is the whole-program analysis output.
type Result struct {
	Loops    []*LoopReport // in region-ID order
	ByRegion map[int]*LoopReport
}

// Counts tallies the verdicts.
func (r *Result) Counts() (parallel, serial, unknown int) {
	for _, rep := range r.Loops {
		switch rep.Verdict {
		case Parallel:
			parallel++
		case Serial:
			serial++
		default:
			unknown++
		}
	}
	return
}

// Analyze classifies every loop region of prog and stamps each loop
// region's Safety field with the verdict. facts, when non-nil, supplies
// the interval/congruence abstract interpretation of internal/absint; it
// upgrades verdicts that the purely syntactic tests leave unknown
// (subscript-range disjointness, must-iterate inner loops, shared
// inner induction subscripts) and never downgrades one. Passing nil
// facts reproduces the facts-free analysis.
func Analyze(prog *regions.Program, facts *absint.Facts) *Result {
	res := &Result{ByRegion: make(map[int]*LoopReport)}
	sums := Summarize(prog.Module)
	binds := bindParams(prog.Module)
	fas := make(map[*ir.Func]*funcAnalysis)
	for _, r := range prog.Regions {
		if r.Kind != regions.LoopRegion {
			continue
		}
		fi := prog.PerFunc[r.Func]
		fa := fas[r.Func]
		if fa == nil {
			fa = newFuncAnalysis(r.Func, sums, facts, binds)
			fas[r.Func] = fa
		}
		rep := fa.checkLoop(fi.LoopOf[r], r, prog.Src)
		r.Safety = rep.Verdict.Safety()
		res.Loops = append(res.Loops, rep)
		res.ByRegion[r.ID] = rep
	}
	return res
}

// funcAnalysis caches the per-function CFG facts the loop checks share.
type funcAnalysis struct {
	f     *ir.Func
	sums  map[*ir.Func]*Summary
	g     *cfg.Graph
	idom  []int
	pos   map[*ir.Instr]int // instruction index within its block
	facts *absint.Facts     // may be nil: interval/congruence refinements off
	binds map[*ir.Instr]*bindSet
	encl  map[*ir.Block]*cfg.Loop // innermost loop containing each block
}

func newFuncAnalysis(f *ir.Func, sums map[*ir.Func]*Summary, facts *absint.Facts, binds map[*ir.Instr]*bindSet) *funcAnalysis {
	fa := &funcAnalysis{
		f: f, sums: sums, g: cfg.New(f), pos: make(map[*ir.Instr]int),
		facts: facts, binds: binds, encl: make(map[*ir.Block]*cfg.Loop),
	}
	fa.idom = fa.g.Dominators()
	for _, b := range f.Blocks {
		for i, ins := range b.Instrs {
			fa.pos[ins] = i
		}
	}
	for _, lp := range fa.g.Loops(fa.idom) {
		for _, b := range lp.Blocks {
			if cur := fa.encl[b]; cur == nil || lp.Depth > cur.Depth {
				fa.encl[b] = lp
			}
		}
	}
	return fa
}

// dominatesIns reports whether a executes before b on every path reaching b
// (same-block ties broken by instruction order).
func (fa *funcAnalysis) dominatesIns(a, b *ir.Instr) bool {
	if a.Block == b.Block {
		return fa.pos[a] < fa.pos[b]
	}
	return cfg.Dominates(fa.idom, fa.g.Index(a.Block), fa.g.Index(b.Block))
}

// uncond reports whether ins executes on every completed iteration of l.
// The direct test is that its block dominates every latch (back-edge
// source). When that fails because ins sits inside an inner loop, the
// test climbs: if ins's block dominates every latch and every in-body
// break source of its innermost loop li (so any pass through li's body
// runs ins before completing or leaving), and absint proves li's body
// runs at least once per entry (MustIterate), then ins executes whenever
// li.Header does, and the question repeats from li.Header one level up.
func (fa *funcAnalysis) uncond(ins *ir.Instr, l *cfg.Loop, latches []*ir.Block) bool {
	if len(latches) == 0 {
		return false
	}
	b := ins.Block
	li := fa.encl[b]
	for {
		if fa.domAll(b, latches) {
			return true
		}
		if li == nil || li.Header == l.Header {
			return false
		}
		if !fa.facts.MustIterate(li.Header) || !fa.domLoopBody(b, li) {
			return false
		}
		b, li = li.Header, li.Parent
	}
}

// domAll reports whether b dominates every block in list.
func (fa *funcAnalysis) domAll(b *ir.Block, list []*ir.Block) bool {
	bi := fa.g.Index(b)
	for _, o := range list {
		if !cfg.Dominates(fa.idom, bi, fa.g.Index(o)) {
			return false
		}
	}
	return true
}

// domLoopBody reports whether b dominates every latch of li and every
// non-header in-loop source of an exit edge. Control that enters li's
// body then executes b before completing an iteration or breaking out,
// so b runs on li's first iteration — the one MustIterate guarantees.
func (fa *funcAnalysis) domLoopBody(b *ir.Block, li *cfg.Loop) bool {
	bi := fa.g.Index(b)
	for _, blk := range li.Blocks {
		u := fa.g.Index(blk)
		mustDom := false
		for _, s := range fa.g.Succs[u] {
			sb := fa.g.Blocks[s]
			if sb == li.Header || (!li.Contains(sb) && blk != li.Header) {
				mustDom = true
				break
			}
		}
		if mustDom && !cfg.Dominates(fa.idom, bi, u) {
			return false
		}
	}
	return true
}

// access is one memory access the loop performs, directly or through a call.
type access struct {
	ins    *ir.Instr // the load/store, or the call carrying the summary
	write  bool
	obj    object
	subs   []ir.Value // full subscript chain, outermost dimension first
	whole  bool       // whole-object access (call summary / partial view)
	uncond bool       // executes on every completed iteration
	broken bool       // reduction-annotated read: old-value dependence broken
	// exposed: the read definitely observes pre-instruction state. True for
	// direct loads; for call-summary reads only when the callee's read is
	// upward-exposed (the callee cannot have overwritten the cell first).
	exposed bool
	// mayOnly: the write might not happen when the instruction executes
	// (call-summary may-writes). Such a write can never prove a kill and
	// never anchors a definite dependence.
	mayOnly bool
}

func (fa *funcAnalysis) line(src *source.File, ins *ir.Instr) int {
	if ins == nil || ins.Pos <= 0 {
		return 0
	}
	return src.Pos(ins.Pos).Line
}

func (fa *funcAnalysis) checkLoop(l *cfg.Loop, r *regions.Region, src *source.File) *LoopReport {
	rep := &LoopReport{Region: r}

	var latches []*ir.Block
	for _, p := range l.Header.Preds {
		if l.Contains(p) {
			latches = append(latches, p)
		}
	}

	ivs := inductionVars(l)

	// Scalar analysis: every live loop-header phi that is not an annotated
	// induction/reduction variable and carries an in-loop definition around
	// the back edge is a definite cross-iteration value dependence. (Dead
	// phis were pruned by irbuild, and loop-body locals never produce live
	// header phis, which is exactly scalar privatization.)
	for _, phi := range l.Header.Instrs {
		if phi.Op != ir.OpPhi || phi.Induction || phi.Reduction {
			continue
		}
		for i, pred := range phi.Block.Preds {
			if !l.Contains(pred) {
				continue
			}
			def, ok := phi.Args[i].(*ir.Instr)
			if !ok || !l.Contains(def.Block) {
				continue // back edge carries a loop-invariant value
			}
			detail := fmt.Sprintf("value %s is carried into the next iteration", def.Name())
			if dl := fa.line(src, def); dl > 0 {
				detail = fmt.Sprintf("value %s defined at line %d is carried into the next iteration",
					def.Name(), dl)
			}
			line := fa.line(src, phi)
			if line == 0 {
				line = fa.line(src, def)
			}
			rep.Causes = append(rep.Causes, Cause{Kind: CauseScalar, Detail: detail, Line: line})
			break
		}
	}

	accs, moreCauses, blockers := fa.collectAccesses(l, latches, src)
	rep.Causes = append(rep.Causes, moreCauses...)
	rep.Blockers = append(rep.Blockers, blockers...)

	causes, blocks := fa.memoryDeps(l, ivs, accs, src)
	rep.Causes = append(rep.Causes, causes...)
	rep.Blockers = append(rep.Blockers, blocks...)

	dedupCauses(&rep.Causes)
	dedupCauses(&rep.Blockers)
	switch {
	case len(rep.Causes) > 0:
		rep.Verdict = Serial
	case len(rep.Blockers) > 0:
		rep.Verdict = Unknown
	default:
		rep.Verdict = Parallel
	}
	return rep
}

// collectAccesses gathers the loop's memory accesses (including call
// summaries) and the side-effect causes/blockers of builtins and calls.
func (fa *funcAnalysis) collectAccesses(l *cfg.Loop, latches []*ir.Block, src *source.File) (accs []access, causes, blockers []Cause) {
	for _, b := range l.Blocks {
		for _, ins := range b.Instrs {
			switch ins.Op {
			case ir.OpLoad:
				obj, subs, whole := resolveCell(ins.Args[0])
				accs = append(accs, access{
					ins: ins, obj: obj, subs: subs, whole: whole,
					uncond: fa.uncond(ins, l, latches), broken: ins.Reduction,
					exposed: true,
				})
			case ir.OpStore:
				obj, subs, whole := resolveCell(ins.Args[0])
				accs = append(accs, access{
					ins: ins, write: true, obj: obj, subs: subs, whole: whole,
					uncond: fa.uncond(ins, l, latches),
				})
			case ir.OpBuiltin:
				switch ins.Builtin {
				case "rand", "frand", "srand":
					c := Cause{Kind: CauseRNG, Line: fa.line(src, ins),
						Detail: fmt.Sprintf("%s() reads and advances the RNG state every iteration", ins.Builtin)}
					if fa.uncond(ins, l, latches) {
						causes = append(causes, c)
					} else {
						c.Detail = fmt.Sprintf("%s() advances the RNG state on some iterations", ins.Builtin)
						blockers = append(blockers, c)
					}
				case "printval", "printstr", "printnl":
					c := Cause{Kind: CauseIO, Line: fa.line(src, ins),
						Detail: "print output must appear in iteration order"}
					if fa.uncond(ins, l, latches) {
						causes = append(causes, c)
					} else {
						c.Detail = "print on some iterations constrains output order"
						blockers = append(blockers, c)
					}
				}
			case ir.OpCall:
				sum := fa.sums[ins.Callee]
				if sum == nil {
					blockers = append(blockers, Cause{Kind: CauseCall, Line: fa.line(src, ins),
						Detail: fmt.Sprintf("call to unknown function %s", ins.Callee.Name)})
					continue
				}
				if sum.Opaque {
					blockers = append(blockers, Cause{Kind: CauseCall, Line: fa.line(src, ins),
						Detail: fmt.Sprintf("%s() has effects the mod/ref analysis cannot resolve", ins.Callee.Name)})
				}
				if sum.Impure {
					kind, what := CauseIO, "ordered I/O"
					if sum.RNG {
						kind, what = CauseRNG, "RNG state"
					}
					c := Cause{Kind: kind, Line: fa.line(src, ins),
						Detail: fmt.Sprintf("%s() carries %s across iterations", ins.Callee.Name, what)}
					if sum.UncondImpure && fa.uncond(ins, l, latches) {
						causes = append(causes, c)
					} else {
						blockers = append(blockers, c)
					}
				}
				accs = append(accs, fa.callAccesses(ins, sum, l, latches)...)
			}
		}
	}
	return accs, causes, blockers
}

// callAccesses expands a callee's mod/ref summary into whole-object
// accesses at this call site, mapping the callee's array-parameter effects
// through the actual arguments.
func (fa *funcAnalysis) callAccesses(call *ir.Instr, sum *Summary, l *cfg.Loop, latches []*ir.Block) []access {
	var out []access
	add := func(a access) {
		a.ins = call
		a.uncond = fa.uncond(call, l, latches)
		out = append(out, a)
	}
	for _, g := range sum.ReadGlobals {
		obj := object{global: g, elem: g.Elem}
		// A scalar global is a single cell, so the whole-object summary is
		// already element-precise; an array summary is not.
		add(access{obj: obj, whole: g.IsArray(), exposed: sum.exposedRead(g)})
	}
	for _, g := range sum.WriteGlobals {
		obj := object{global: g, elem: g.Elem}
		add(access{write: true, obj: obj, whole: g.IsArray(), mayOnly: !sum.mustWrites(g)})
	}
	mapParam := func(idx int, write bool) {
		a := access{write: write, whole: true, mayOnly: write}
		if idx >= len(call.Args) {
			a.obj = object{unknown: true}
		} else {
			a.obj, _, _ = resolveCell(call.Args[idx])
		}
		add(a)
	}
	for _, idx := range sum.ReadParams {
		mapParam(idx, false)
	}
	for _, idx := range sum.WriteParams {
		mapParam(idx, true)
	}
	return out
}

// memoryDeps runs the dependence tests over every (store, load) pair of
// may-aliasing objects.
func (fa *funcAnalysis) memoryDeps(l *cfg.Loop, ivs map[*ir.Instr]ivInfo, accs []access, src *source.File) (causes, blockers []Cause) {
	var reads, writes []int
	for i, a := range accs {
		if a.write {
			writes = append(writes, i)
		} else if !a.broken {
			reads = append(reads, i)
		}
	}

	// Subscript affine forms, computed once per access.
	forms := make([][]affine, len(accs))
	for _, i := range append(append([]int(nil), reads...), writes...) {
		a := accs[i]
		if a.whole || a.obj.unknown {
			continue
		}
		fs := make([]affine, len(a.subs))
		for d, s := range a.subs {
			fs[d] = affineOf(s, l, ivs, 0)
		}
		forms[i] = fs
	}

	// Scalar privatization / kill analysis: a read dominated by a
	// same-cell store reads this iteration's value, never a previous
	// iteration's. A same-cell store that does NOT dominate the read makes
	// the cross-iteration read conditional (some paths see the fresh
	// value), which degrades any definite dependence to a blocker.
	covered := make([]bool, len(accs))
	partialKill := make([]bool, len(accs))
	for _, ri := range reads {
		r := accs[ri]
		if r.whole || r.obj.unknown {
			continue
		}
		for _, wi := range writes {
			w := accs[wi]
			if w.whole || w.obj.unknown || !sameObject(r.obj, w.obj) {
				continue
			}
			if !sameCell(forms[ri], forms[wi], r.subs, w.subs) {
				continue
			}
			if w.ins == r.ins && r.exposed {
				continue // a call's own write cannot kill its exposed read
			}
			if !w.mayOnly && fa.dominatesIns(w.ins, r.ins) {
				covered[ri] = true
			} else if !fa.dominatesIns(r.ins, w.ins) {
				// A non-dominating (or merely possible) same-cell write makes
				// the cross-iteration read conditional.
				partialKill[ri] = true
			}
		}
	}

	for _, ri := range reads {
		r := accs[ri]
		if covered[ri] {
			continue
		}
		for _, wi := range writes {
			w := accs[wi]
			if !fa.aliases(r.obj, w.obj) {
				continue
			}
			name := r.obj.name()
			if name == "?" {
				name = w.obj.name()
			}
			if r.whole || w.whole || r.obj.unknown || w.obj.unknown {
				line := fa.line(src, w.ins)
				if line == 0 {
					line = fa.line(src, r.ins)
				}
				blockers = append(blockers, Cause{Kind: CauseMemory, Line: line,
					Detail: fmt.Sprintf("access to %s is not element-wise analyzable", name)})
				continue
			}
			verdict, dist := fa.testPairFacts(l, forms[wi], forms[ri], w, r)
			switch verdict {
			case pairIndependent:
				continue
			case pairDefinite:
				// A definite dependence needs must-aliasing bases,
				// unconditional execution of a definite write and an exposed,
				// unkilled read.
				if sameObject(r.obj, w.obj) && r.uncond && w.uncond &&
					r.exposed && !w.mayOnly && !partialKill[ri] {
					det := fmt.Sprintf("%s written at line %d is read %s",
						name, fa.line(src, w.ins), distancePhrase(dist))
					causes = append(causes, Cause{Kind: CauseMemory, Detail: det, Line: fa.line(src, r.ins)})
					continue
				}
				fallthrough
			default: // pairMaybe
				blockers = append(blockers, Cause{Kind: CauseMemory, Line: fa.line(src, r.ins),
					Detail: fmt.Sprintf("subscripts of %s (store line %d, load line %d) not provably independent",
						name, fa.line(src, w.ins), fa.line(src, r.ins))})
			}
		}
	}
	return causes, blockers
}

func distancePhrase(dist int64) string {
	switch {
	case dist == 0:
		return "by every later iteration"
	case dist == 1:
		return "by the next iteration"
	default:
		return fmt.Sprintf("%d iterations later", dist)
	}
}

// sameCell reports whether two accesses provably address the same cell in
// the same iteration (used by the kill analysis): each dimension's affine
// forms must agree, or — even when the subscript is not affine at all —
// both sides index with the very same SSA value, which trivially takes
// the same value within one iteration.
func sameCell(a, b []affine, asubs, bsubs []ir.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if d < len(asubs) && d < len(bsubs) && asubs[d] == bsubs[d] {
			continue
		}
		if !a[d].ok || !b[d].ok || !a[d].equalBases(b[d]) ||
			a[d].k != b[d].k || a[d].c != b[d].c {
			return false
		}
	}
	return true
}

func dedupCauses(cs *[]Cause) {
	seen := make(map[Cause]bool)
	out := (*cs)[:0]
	for _, c := range *cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	*cs = out
}
