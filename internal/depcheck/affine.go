// Affine subscript analysis: abstract memory objects, extraction of
// subscripts as affine functions of the loop's normalized iteration number,
// and the ZIV / strong-SIV / GCD dependence tests.
package depcheck

import (
	"kremlin/internal/ast"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
)

// object identifies the base of a memory access for alias classification.
// Exactly one of global/alloc/param is set, or unknown.
type object struct {
	global  *ir.Global // module global (scalar cell or array)
	alloc   *ir.Instr  // OpAllocArray local
	param   *ir.Instr  // array parameter: may alias any same-typed array
	elem    ast.BasicKind
	unknown bool
}

func (o object) isArray() bool {
	switch {
	case o.global != nil:
		return o.global.IsArray()
	case o.alloc != nil, o.param != nil:
		return true
	}
	return false
}

func (o object) name() string {
	switch {
	case o.global != nil:
		return o.global.Name
	case o.alloc != nil:
		return "local array " + o.alloc.Name()
	case o.param != nil:
		return "array parameter " + o.param.Name()
	}
	return "?"
}

// sameObject reports must-aliasing: the two accesses touch the very same
// object on every execution.
func sameObject(a, b object) bool {
	if a.unknown || b.unknown {
		return false
	}
	return a.global == b.global && a.alloc == b.alloc && a.param == b.param
}

// mayAlias reports whether two objects can overlap. Distinct globals and
// distinct local allocations are disjoint; an array parameter may be bound
// to any array of the same element type from the caller (including another
// parameter or a global), but never to an array allocated in this function
// after the call was made.
func mayAlias(a, b object) bool {
	if a.unknown || b.unknown {
		return true
	}
	if sameObject(a, b) {
		return true
	}
	if a.elem != b.elem {
		return false
	}
	if a.param != nil {
		return b.isArray() && b.alloc == nil
	}
	if b.param != nil {
		return a.isArray() && a.alloc == nil
	}
	return false
}

// resolveCell walks a load/store cell operand (a chain of OpViews over a
// base) to the abstract object and subscript list, outermost dimension
// first. whole is true when the access cannot be expressed as one element
// of the object (partial views passed around, unexpected shapes).
func resolveCell(v ir.Value) (object, []ir.Value, bool) {
	var subs []ir.Value
	for {
		ins, ok := v.(*ir.Instr)
		if !ok {
			return object{unknown: true}, nil, true
		}
		switch ins.Op {
		case ir.OpView:
			subs = append([]ir.Value{ins.Args[1]}, subs...)
			v = ins.Args[0]
		case ir.OpGlobal:
			obj := object{global: ins.Global, elem: ins.Global.Elem}
			if len(subs) != len(ins.Global.Dims) {
				return obj, nil, true
			}
			return obj, subs, false
		case ir.OpAllocArray:
			obj := object{alloc: ins, elem: ins.Typ.Elem}
			if len(subs) != ins.Typ.Dims {
				return obj, nil, true
			}
			return obj, subs, false
		case ir.OpParam:
			if ins.Typ.Dims == 0 {
				return object{unknown: true}, nil, true
			}
			obj := object{param: ins, elem: ins.Typ.Elem}
			if len(subs) != ins.Typ.Dims {
				return obj, nil, true
			}
			return obj, subs, false
		default:
			return object{unknown: true}, nil, true
		}
	}
}

// ivInfo describes one basic induction variable of a loop: its value at
// normalized iteration n (0, 1, 2, ...) is start + step·n.
type ivInfo struct {
	step   int64
	stepOK bool     // step is a known integer constant
	start  ir.Value // value on loop entry (defined outside the loop)
}

// inductionVars collects the analysis-annotated induction phis of l's
// header with their steps. A phi whose update is not a linear advance
// (i = c - i, or a loop-variant step) gets stepOK false and is treated as
// opaque by the affine extraction.
func inductionVars(l *cfg.Loop) map[*ir.Instr]ivInfo {
	ivs := make(map[*ir.Instr]ivInfo)
	for _, phi := range l.Header.Instrs {
		if phi.Op != ir.OpPhi || !phi.Induction {
			continue
		}
		info := ivInfo{}
		for i, pred := range phi.Block.Preds {
			if l.Contains(pred) {
				if upd, ok := phi.Args[i].(*ir.Instr); ok {
					info.step, info.stepOK = stepOf(upd, phi)
				}
			} else {
				info.start = phi.Args[i]
			}
		}
		ivs[phi] = info
	}
	return ivs
}

// stepOf extracts the constant step of an induction update i = i ± c.
func stepOf(upd *ir.Instr, phi *ir.Instr) (int64, bool) {
	if upd.Op != ir.OpBin || len(upd.Args) != 2 {
		return 0, false
	}
	carried := -1
	for i, a := range upd.Args {
		if a == ir.Value(phi) {
			carried = i
		}
	}
	if carried < 0 {
		return 0, false
	}
	c, ok := upd.Args[1-carried].(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	switch {
	case upd.Bin == ir.BinAdd:
		return c.V, true
	case upd.Bin == ir.BinSub && carried == 0:
		return -c.V, true
	}
	// i = c - i oscillates: not linear in the iteration number.
	return 0, false
}

// affine is a subscript expressed as k·n + Σ base[v]·v + c over the loop's
// normalized iteration number n, with loop-invariant symbolic terms v.
type affine struct {
	ok   bool
	k    int64
	c    int64
	base map[ir.Value]int64
}

func (a affine) equalBases(b affine) bool {
	for v, n := range a.base {
		if b.base[v] != n {
			return false
		}
	}
	for v, n := range b.base {
		if a.base[v] != n {
			return false
		}
	}
	return true
}

func (a *affine) addTerm(v ir.Value, n int64) {
	if n == 0 {
		return
	}
	if a.base == nil {
		a.base = make(map[ir.Value]int64)
	}
	a.base[v] += n
	if a.base[v] == 0 {
		delete(a.base, v)
	}
}

const affineMaxDepth = 16

// affineOf extracts v as an affine function of l's iteration number.
// scale multiplies the contribution (used by the recursion); depth bounds it.
func affineOf(v ir.Value, l *cfg.Loop, ivs map[*ir.Instr]ivInfo, depth int) affine {
	var out affine
	out.ok = true
	if !addAffine(&out, v, 1, l, ivs, depth) {
		return affine{}
	}
	return out
}

func addAffine(out *affine, v ir.Value, scale int64, l *cfg.Loop, ivs map[*ir.Instr]ivInfo, depth int) bool {
	if depth > affineMaxDepth {
		return false
	}
	switch x := v.(type) {
	case *ir.ConstInt:
		out.c += scale * x.V
		return true
	case *ir.Instr:
		if iv, isIV := ivs[x]; isIV {
			if !iv.stepOK || iv.start == nil {
				return false
			}
			// value = start + step·n
			out.k += scale * iv.step
			return addAffine(out, iv.start, scale, l, ivs, depth+1)
		}
		if !l.Contains(x.Block) {
			out.addTerm(x, scale)
			return true // loop-invariant SSA value: a fixed symbol
		}
		if x.Op != ir.OpBin {
			return false
		}
		switch x.Bin {
		case ir.BinAdd:
			return addAffine(out, x.Args[0], scale, l, ivs, depth+1) &&
				addAffine(out, x.Args[1], scale, l, ivs, depth+1)
		case ir.BinSub:
			return addAffine(out, x.Args[0], scale, l, ivs, depth+1) &&
				addAffine(out, x.Args[1], -scale, l, ivs, depth+1)
		case ir.BinMul:
			if c, ok := x.Args[1].(*ir.ConstInt); ok {
				return addAffine(out, x.Args[0], scale*c.V, l, ivs, depth+1)
			}
			if c, ok := x.Args[0].(*ir.ConstInt); ok {
				return addAffine(out, x.Args[1], scale*c.V, l, ivs, depth+1)
			}
		}
		return false
	}
	return false
}

// Per-dimension dependence test outcomes.
type dimResult int

const (
	dimNever  dimResult = iota // no cross-iteration flow solution in this dim
	dimAlways                  // equal in every iteration pair (ZIV-equal)
	dimDist                    // equal exactly at read-after-write distance d
	dimMaybe                   // cannot decide
)

// testDim solves w(n_w) == r(n_r) for a flow dependence (write at n_w,
// read at n_r > n_w) in one dimension.
func testDim(w, r affine) (dimResult, int64) {
	if !w.ok || !r.ok || !w.equalBases(r) {
		return dimMaybe, 0
	}
	dc := r.c - w.c
	switch {
	case w.k == r.k && w.k == 0: // ZIV
		if dc == 0 {
			return dimAlways, 0
		}
		return dimNever, 0
	case w.k == r.k: // strong SIV: k(n_w − n_r) = dc
		if dc%w.k != 0 {
			return dimNever, 0
		}
		d := -dc / w.k // n_r − n_w
		if d <= 0 {
			// d == 0: same-iteration only. d < 0: the write happens in a
			// later iteration than the read — an anti dependence, which
			// renaming removes (flow-only semantics).
			return dimNever, 0
		}
		return dimDist, d
	default: // weak SIV / MIV: GCD test
		g := gcd(abs64(w.k), abs64(r.k))
		if g != 0 && dc%g != 0 {
			return dimNever, 0
		}
		return dimMaybe, 0
	}
}

type pairResult int

const (
	pairIndependent pairResult = iota
	pairDefinite
	pairMaybe
)

// The per-dimension results combine in testPairFacts (facts.go): any
// provably-unequal dimension (or two dimensions demanding different
// distances) makes the pair independent; a consistent solution across
// all dimensions with no undecided dimension is a definite carried
// dependence.

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
