package depcheck

// This file holds the absint-powered refinements: whole-module parameter
// binding sets for the alias query, value-range/congruence disjointness
// of subscripts, and the shared-inner-induction collision rule.
// Everything here only upgrades verdicts the syntactic tests leave
// unknown — with nil facts the analysis is a superset of the facts-free
// one, never weaker.

import (
	"kremlin/internal/absint"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
)

// bindSet is the set of root arrays a callee's array parameter can be
// bound to, computed over every call site in the module. A closed
// (non-open) set lists every global and local allocation the parameter
// can name; two parameters with disjoint closed sets never alias, and a
// parameter whose closed set excludes a global never aliases it. A
// parameter of a function that is never called has a closed empty set:
// its accesses never execute, so "aliases nothing" is sound.
type bindSet struct {
	open    bool // some binding could not be resolved to a root array
	globals map[*ir.Global]bool
	allocs  map[*ir.Instr]bool
}

// rootArray walks view chains to the defining array of v: a global, a
// local allocation, or a parameter. nil when the base is anything else.
func rootArray(v ir.Value) *ir.Instr {
	for {
		ins, ok := v.(*ir.Instr)
		if !ok {
			return nil
		}
		switch ins.Op {
		case ir.OpView:
			v = ins.Args[0]
		case ir.OpGlobal, ir.OpAllocArray, ir.OpParam:
			return ins
		default:
			return nil
		}
	}
}

// bindParams computes the binding set of every array parameter in the
// module: the roots of every actual argument at every call site, with
// parameter-to-parameter edges closed transitively (handles recursion).
func bindParams(mod *ir.Module) map[*ir.Instr]*bindSet {
	binds := make(map[*ir.Instr]*bindSet)
	get := func(p *ir.Instr) *bindSet {
		bs := binds[p]
		if bs == nil {
			bs = &bindSet{globals: make(map[*ir.Global]bool), allocs: make(map[*ir.Instr]bool)}
			binds[p] = bs
		}
		return bs
	}
	for _, f := range mod.Funcs {
		for _, p := range f.Params {
			if p.Typ.Dims > 0 {
				get(p)
			}
		}
	}
	edges := make(map[*ir.Instr]map[*ir.Instr]bool) // callee param -> caller params flowing in
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op != ir.OpCall || ins.Callee == nil {
					continue
				}
				for i, p := range ins.Callee.Params {
					if p.Typ.Dims == 0 {
						continue
					}
					bs := get(p)
					var root *ir.Instr
					if i < len(ins.Args) {
						root = rootArray(ins.Args[i])
					}
					switch {
					case root == nil:
						bs.open = true
					case root.Op == ir.OpGlobal:
						bs.globals[root.Global] = true
					case root.Op == ir.OpAllocArray:
						bs.allocs[root] = true
					default: // OpParam: caller's own parameter flows in
						if edges[p] == nil {
							edges[p] = make(map[*ir.Instr]bool)
						}
						edges[p][root] = true
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for p, srcs := range edges {
			bs := binds[p]
			for q := range srcs {
				qs := binds[q]
				if qs == nil {
					if !bs.open {
						bs.open, changed = true, true
					}
					continue
				}
				if qs.open && !bs.open {
					bs.open, changed = true, true
				}
				for g := range qs.globals {
					if !bs.globals[g] {
						bs.globals[g], changed = true, true
					}
				}
				for a := range qs.allocs {
					if !bs.allocs[a] {
						bs.allocs[a], changed = true, true
					}
				}
			}
		}
	}
	return binds
}

// aliases is mayAlias refined by the module-wide binding sets: an array
// parameter with a closed binding set aliases only the roots it can be
// bound to.
func (fa *funcAnalysis) aliases(a, b object) bool {
	if !mayAlias(a, b) {
		return false
	}
	if fa.binds == nil {
		return true
	}
	switch {
	case a.param != nil && b.param != nil:
		if a.param == b.param {
			return true
		}
		as, bs := fa.binds[a.param], fa.binds[b.param]
		if as == nil || bs == nil || as.open || bs.open {
			return true
		}
		for g := range as.globals {
			if bs.globals[g] {
				return true
			}
		}
		for al := range as.allocs {
			if bs.allocs[al] {
				return true
			}
		}
		return false
	case a.param != nil:
		return fa.paramBindable(a.param, b)
	case b.param != nil:
		return fa.paramBindable(b.param, a)
	}
	return true
}

// paramBindable reports whether parameter p's binding set admits object o.
func (fa *funcAnalysis) paramBindable(p *ir.Instr, o object) bool {
	bs := fa.binds[p]
	if bs == nil || bs.open {
		return true
	}
	switch {
	case o.global != nil:
		return bs.globals[o.global]
	case o.alloc != nil:
		return bs.allocs[o.alloc]
	}
	return true
}

// testPairFacts is testPair with two absint refinements for dimensions
// the affine tests cannot decide: disjoint value ranges or residue
// classes prove the dimension never collides (dimNever), and a shared
// inner-loop induction subscript whose start value re-occurs every outer
// iteration proves it always collides (dimAlways).
func (fa *funcAnalysis) testPairFacts(l *cfg.Loop, w, r []affine, wa, ra access) (pairResult, int64) {
	if len(w) != len(r) {
		return pairMaybe, 0
	}
	var dist int64
	haveDist, maybe := false, false
	for d := range w {
		res, dd := testDim(w[d], r[d])
		if res == dimMaybe {
			switch {
			case fa.disjointVals(wa.subs[d], ra.subs[d]):
				res = dimNever
			case fa.sharedInnerIV(l, wa, ra, d):
				res = dimAlways
			}
		}
		switch res {
		case dimNever:
			return pairIndependent, 0
		case dimDist:
			if haveDist && dd != dist {
				return pairIndependent, 0
			}
			haveDist, dist = true, dd
		case dimMaybe:
			maybe = true
		}
	}
	if maybe {
		return pairMaybe, 0
	}
	return pairDefinite, dist
}

// disjointVals reports whether the abstract values of two subscripts can
// never be equal: their intervals do not overlap, or their congruence
// classes differ modulo a common divisor of the strides.
func (fa *funcAnalysis) disjointVals(a, b ir.Value) bool {
	if fa.facts == nil {
		return false
	}
	va, ok := fa.facts.ValueOf(a)
	if !ok {
		return false
	}
	vb, ok := fa.facts.ValueOf(b)
	if !ok {
		return false
	}
	if va.Bot() || vb.Bot() {
		return false // unreachable code: stay conservative
	}
	if va.I.Hi < vb.I.Lo || vb.I.Hi < va.I.Lo {
		return true
	}
	return congDisjoint(va, vb)
}

// congDisjoint reports x ≢ y under the congruence components: values in
// different residue classes modulo a common modulus are never equal.
// M == 0 is an exact constant (any modulus applies), M == 1 is no
// information.
func congDisjoint(a, b absint.Val) bool {
	switch {
	case a.M == 0 && b.M == 0:
		return a.R != b.R
	case a.M == 0 && b.M >= 2:
		return posMod(a.R-b.R, b.M) != 0
	case b.M == 0 && a.M >= 2:
		return posMod(b.R-a.R, a.M) != 0
	case a.M >= 2 && b.M >= 2:
		g := gcd(a.M, b.M)
		return g > 1 && posMod(a.R-b.R, g) != 0
	}
	return false
}

func posMod(x, m int64) int64 {
	x %= m
	if x < 0 {
		x += m
	}
	return x
}

// sharedInnerIV recognizes a dimension subscripted on both sides by the
// very same inner-loop induction phi. When the inner loop provably runs
// its body on every entry (absint MustIterate), the phi's start value is
// invariant in l, and both accesses execute on every completed pass
// through the inner body (domLoopBody), then both sides touch index
// `start` of this dimension on every completed iteration of l: the
// dimension collides for every iteration pair, i.e. dimAlways. Combined
// with consistent distances in the remaining dimensions this turns an
// unknown into a definite carried dependence.
func (fa *funcAnalysis) sharedInnerIV(l *cfg.Loop, wa, ra access, d int) bool {
	if fa.facts == nil || wa.subs[d] != ra.subs[d] {
		return false
	}
	phi, ok := wa.subs[d].(*ir.Instr)
	if !ok || phi.Op != ir.OpPhi || !phi.Induction {
		return false
	}
	li := fa.encl[phi.Block]
	if li == nil || li.Header != phi.Block {
		return false
	}
	if li.Header == l.Header || !l.Contains(li.Header) {
		return false
	}
	if !fa.facts.MustIterate(li.Header) {
		return false
	}
	// The start value (the phi operand on entry edges) must be the same
	// cell index on every iteration of l.
	var start ir.Value
	for i, pred := range phi.Block.Preds {
		if li.Contains(pred) {
			continue
		}
		if start != nil && start != phi.Args[i] {
			return false
		}
		start = phi.Args[i]
	}
	if start == nil {
		return false
	}
	if sins, ok := start.(*ir.Instr); ok && l.Contains(sins.Block) {
		return false
	}
	if !li.Contains(wa.ins.Block) || !li.Contains(ra.ins.Block) {
		return false
	}
	return fa.domLoopBody(wa.ins.Block, li) && fa.domLoopBody(ra.ins.Block, li)
}
