// Bottom-up mod/ref call summaries: which globals and array parameters a
// function (transitively) reads or writes, and whether it performs ordered
// side effects. Computed as a fixpoint so mutual recursion is handled; the
// sets only grow, so the iteration terminates.
package depcheck

import (
	"sort"

	"kremlin/internal/cfg"
	"kremlin/internal/ir"
)

// Summary is the mod/ref summary of one function, at whole-object
// granularity. Parameter effects are indices into the caller's argument
// list; effects on function-local arrays that do not escape through a
// return value are invisible here (each call allocates fresh ones).
type Summary struct {
	ReadGlobals  []*ir.Global
	WriteGlobals []*ir.Global
	ReadParams   []int // indices of array parameters read
	WriteParams  []int // indices of array parameters written
	// MustWriteGlobals are scalar globals definitely stored on every call
	// that returns. Whole-object summaries lose the callee's internal
	// ordering, so plain WriteGlobals can never prove a kill; a must-write
	// can.
	MustWriteGlobals []*ir.Global
	// ExposedReadGlobals are scalar globals that every returning call reads
	// before anything could have written them: the callee definitely
	// observes the state from before the call. Only exposed reads can anchor
	// a *definite* cross-iteration dependence through a call.
	ExposedReadGlobals []*ir.Global
	Impure             bool // RNG or I/O side effects, possibly via callees
	RNG                bool // the impurity involves the RNG state
	UncondImpure       bool // an impure effect happens on every call that returns
	Opaque             bool // touches memory the analysis cannot attribute
}

// mustWrites reports whether g is in MustWriteGlobals.
func (s *Summary) mustWrites(g *ir.Global) bool {
	for _, x := range s.MustWriteGlobals {
		if x == g {
			return true
		}
	}
	return false
}

// exposedRead reports whether g is in ExposedReadGlobals.
func (s *Summary) exposedRead(g *ir.Global) bool {
	for _, x := range s.ExposedReadGlobals {
		if x == g {
			return true
		}
	}
	return false
}

type sumBuild struct {
	readG, writeG map[*ir.Global]bool
	mustWG        map[*ir.Global]bool
	exposedG      map[*ir.Global]bool
	readP, writeP map[int]bool
	impure        bool
	rng           bool
	uncond        bool
	opaque        bool
}

func newSumBuild() *sumBuild {
	return &sumBuild{
		readG:    make(map[*ir.Global]bool),
		writeG:   make(map[*ir.Global]bool),
		mustWG:   make(map[*ir.Global]bool),
		exposedG: make(map[*ir.Global]bool),
		readP:    make(map[int]bool),
		writeP:   make(map[int]bool),
	}
}

// merge folds o into s and reports whether s grew.
func (s *sumBuild) merge(o *sumBuild) bool {
	changed := false
	for g := range o.readG {
		if !s.readG[g] {
			s.readG[g] = true
			changed = true
		}
	}
	for g := range o.writeG {
		if !s.writeG[g] {
			s.writeG[g] = true
			changed = true
		}
	}
	for g := range o.mustWG {
		if !s.mustWG[g] {
			s.mustWG[g] = true
			changed = true
		}
	}
	for p := range o.readP {
		if !s.readP[p] {
			s.readP[p] = true
			changed = true
		}
	}
	for p := range o.writeP {
		if !s.writeP[p] {
			s.writeP[p] = true
			changed = true
		}
	}
	grow := func(dst *bool, src bool) {
		if src && !*dst {
			*dst = true
			changed = true
		}
	}
	grow(&s.impure, o.impure)
	grow(&s.rng, o.rng)
	grow(&s.uncond, o.uncond)
	grow(&s.opaque, o.opaque)
	return changed
}

// Summarize computes the mod/ref summary of every function in m.
func Summarize(m *ir.Module) map[*ir.Func]*Summary {
	builds := make(map[*ir.Func]*sumBuild, len(m.Funcs))
	for _, f := range m.Funcs {
		builds[f] = newSumBuild()
	}
	// Phase 1: the may/must effect sets. Monotone (sets only grow), so the
	// fixpoint terminates and handles recursion.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if builds[f].merge(scanFunc(f, builds)) {
				changed = true
			}
		}
	}
	// Phase 2: exposed reads. Exposure shrinks as may-write sets grow, so it
	// must run after phase 1 has converged; against the final may-writes it
	// is again a growing (monotone) fixpoint.
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			for _, g := range exposedScan(f, builds) {
				if !builds[f].exposedG[g] {
					builds[f].exposedG[g] = true
					changed = true
				}
			}
		}
	}
	out := make(map[*ir.Func]*Summary, len(m.Funcs))
	for _, f := range m.Funcs {
		out[f] = builds[f].finish()
	}
	return out
}

// scanFunc computes f's summary from its body and the current summaries of
// its callees.
func scanFunc(f *ir.Func, builds map[*ir.Func]*sumBuild) *sumBuild {
	s := newSumBuild()
	g := cfg.New(f)
	idom := g.Dominators()
	var exits []int
	for i, b := range f.Blocks {
		if len(b.Succs) == 0 {
			exits = append(exits, i)
		}
	}
	// dominatesExits: the instruction executes on every call that returns.
	dominatesExits := func(ins *ir.Instr) bool {
		bi := g.Index(ins.Block)
		for _, e := range exits {
			if !cfg.Dominates(idom, bi, e) {
				return false
			}
		}
		return len(exits) > 0
	}

	// noteObject records an effect on the object behind a cell operand.
	noteObject := func(obj object, write bool) {
		switch {
		case obj.global != nil:
			if write {
				s.writeG[obj.global] = true
			} else {
				s.readG[obj.global] = true
			}
		case obj.param != nil:
			if write {
				s.writeP[obj.param.Slot] = true
			} else {
				s.readP[obj.param.Slot] = true
			}
		case obj.alloc != nil:
			// Function-local array: fresh per call, invisible to callers.
		default:
			s.opaque = true
		}
	}

	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			switch ins.Op {
			case ir.OpLoad:
				obj, _, _ := resolveCell(ins.Args[0])
				noteObject(obj, false)
			case ir.OpStore:
				obj, _, _ := resolveCell(ins.Args[0])
				noteObject(obj, true)
				if obj.global != nil && !obj.global.IsArray() && dominatesExits(ins) {
					s.mustWG[obj.global] = true
				}
			case ir.OpBuiltin:
				switch ins.Builtin {
				case "rand", "frand", "srand":
					s.impure = true
					s.rng = true
					if dominatesExits(ins) {
						s.uncond = true
					}
				case "printval", "printstr", "printnl":
					s.impure = true
					if dominatesExits(ins) {
						s.uncond = true
					}
				}
			case ir.OpCall:
				cs := builds[ins.Callee]
				if cs == nil {
					s.opaque = true
					continue
				}
				s.impure = s.impure || cs.impure
				s.rng = s.rng || cs.rng
				s.opaque = s.opaque || cs.opaque
				if cs.uncond && dominatesExits(ins) {
					s.uncond = true
				}
				if dominatesExits(ins) {
					for cg := range cs.mustWG {
						s.mustWG[cg] = true
					}
				}
				// Map the callee's parameter effects through our arguments.
				mapParam := func(idx int, write bool) {
					if idx >= len(ins.Args) {
						s.opaque = true
						return
					}
					obj, _, _ := resolveCell(ins.Args[idx])
					noteObject(obj, write)
				}
				for p := range cs.readP {
					mapParam(p, false)
				}
				for p := range cs.writeP {
					mapParam(p, true)
				}
				for cg := range cs.readG {
					s.readG[cg] = true
				}
				for cg := range cs.writeG {
					s.writeG[cg] = true
				}
			}
		}
	}
	return s
}

// exposedScan returns the scalar globals that f definitely reads before any
// possible write on every returning call, given the converged may-write
// summaries and the callees' current exposure sets.
func exposedScan(f *ir.Func, builds map[*ir.Func]*sumBuild) []*ir.Global {
	g := cfg.New(f)
	idom := g.Dominators()
	var exits []int
	for i, b := range f.Blocks {
		if len(b.Succs) == 0 {
			exits = append(exits, i)
		}
	}
	if len(exits) == 0 {
		return nil
	}
	dominatesExits := func(bi int) bool {
		for _, e := range exits {
			if !cfg.Dominates(idom, bi, e) {
				return false
			}
		}
		return true
	}

	// reach[i][j]: a path of at least one edge from block i to block j
	// (reach[i][i] is true only inside a cycle).
	n := len(f.Blocks)
	reach := make([][]bool, n)
	for i := 0; i < n; i++ {
		reach[i] = make([]bool, n)
		stack := append([]int(nil), g.Succs[i]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[i][x] {
				continue
			}
			reach[i][x] = true
			stack = append(stack, g.Succs[x]...)
		}
	}

	// Per scalar global: the instructions that read it (directly, or via a
	// call whose callee has an exposed read) and those that may write it.
	type site struct {
		ins *ir.Instr
		bi  int
		pos int
	}
	readers := make(map[*ir.Global][]site)
	writers := make(map[*ir.Global][]site)
	for bi, b := range f.Blocks {
		for pi, ins := range b.Instrs {
			at := site{ins, bi, pi}
			switch ins.Op {
			case ir.OpLoad:
				if obj, _, _ := resolveCell(ins.Args[0]); obj.global != nil && !obj.global.IsArray() {
					readers[obj.global] = append(readers[obj.global], at)
				}
			case ir.OpStore:
				if obj, _, _ := resolveCell(ins.Args[0]); obj.global != nil && !obj.global.IsArray() {
					writers[obj.global] = append(writers[obj.global], at)
				}
			case ir.OpCall:
				cs := builds[ins.Callee]
				if cs == nil {
					continue
				}
				for cg := range cs.exposedG {
					readers[cg] = append(readers[cg], at)
				}
				for cg := range cs.writeG {
					if !cg.IsArray() {
						writers[cg] = append(writers[cg], at)
					}
				}
			}
		}
	}

	var out []*ir.Global
	for gl, rs := range readers {
		exposed := false
		for _, r := range rs {
			if !dominatesExits(r.bi) {
				continue
			}
			preceded := false
			for _, w := range writers[gl] {
				if w.ins == r.ins {
					continue // a call's own write cannot precede its exposed read
				}
				if w.bi == r.bi && w.pos < r.pos {
					preceded = true
					break
				}
				if reach[w.bi][r.bi] {
					preceded = true
					break
				}
			}
			if !preceded {
				exposed = true
				break
			}
		}
		if exposed {
			out = append(out, gl)
		}
	}
	return out
}

func (s *sumBuild) finish() *Summary {
	sum := &Summary{
		Impure:       s.impure,
		RNG:          s.rng,
		UncondImpure: s.uncond,
		Opaque:       s.opaque,
	}
	sum.ReadGlobals = sortGlobals(s.readG)
	sum.WriteGlobals = sortGlobals(s.writeG)
	sum.MustWriteGlobals = sortGlobals(s.mustWG)
	sum.ExposedReadGlobals = sortGlobals(s.exposedG)
	sum.ReadParams = sortInts(s.readP)
	sum.WriteParams = sortInts(s.writeP)
	return sum
}

func sortGlobals(set map[*ir.Global]bool) []*ir.Global {
	out := make([]*ir.Global, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func sortInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
