package depcheck_test

import (
	"strings"
	"testing"

	"kremlin/internal/absint"
	"kremlin/internal/analysis"
	"kremlin/internal/depcheck"
	"kremlin/internal/irbuild"
	"kremlin/internal/parser"
	"kremlin/internal/regions"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

// check compiles src through the standard pipeline (parse, typecheck,
// lower, annotate, regions) and runs the dependence analyzer.
func check(t *testing.T, src string) (*regions.Program, *depcheck.Result) {
	t.Helper()
	file := source.NewFile("test.kr", src)
	errs := &source.ErrorList{}
	tree := parser.Parse(file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := types.Check(tree, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	mod := irbuild.Build(tree, info, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	analysis.Run(mod)
	prog := regions.Analyze(mod, file)
	return prog, depcheck.Analyze(prog, absint.Analyze(mod))
}

// loopIn returns the report of the single loop region inside function fn.
func loopIn(t *testing.T, prog *regions.Program, res *depcheck.Result, fn string) *depcheck.LoopReport {
	t.Helper()
	var found *depcheck.LoopReport
	for _, rep := range res.Loops {
		if rep.Region.Func.Name != fn {
			continue
		}
		if found != nil {
			t.Fatalf("function %s has more than one loop", fn)
		}
		found = rep
	}
	if found == nil {
		t.Fatalf("no loop report for function %s", fn)
	}
	return found
}

func wantVerdict(t *testing.T, rep *depcheck.LoopReport, want depcheck.Verdict) {
	t.Helper()
	if rep.Verdict != want {
		t.Errorf("%s: verdict = %s, want %s\ncauses: %v\nblockers: %v",
			rep.Region.Label(), rep.Verdict, want, rep.Causes, rep.Blockers)
	}
}

func TestDOALLIsParallel(t *testing.T) {
	prog, res := check(t, `
float a[100];
float b[100];
void scale(int n) {
	for (int i = 0; i < n; i++) {
		b[i] = 3.0 * a[i] + 1.0;
	}
}
int main() { scale(100); return 0; }
`)
	rep := loopIn(t, prog, res, "scale")
	wantVerdict(t, rep, depcheck.Parallel)
	if rep.Region.Safety != regions.SafetyProven {
		t.Errorf("region safety = %s, want proven", rep.Region.Safety)
	}
}

func TestCarriedDependenceIsSerial(t *testing.T) {
	prog, res := check(t, `
float b[100];
void smooth(int n) {
	for (int i = 1; i < n; i++) {
		b[i] = b[i-1] + 1.0;
	}
}
int main() { smooth(100); return 0; }
`)
	rep := loopIn(t, prog, res, "smooth")
	wantVerdict(t, rep, depcheck.Serial)
	if rep.Region.Safety != regions.SafetyRefuted {
		t.Errorf("region safety = %s, want refuted", rep.Region.Safety)
	}
	if len(rep.Causes) == 0 {
		t.Fatal("serial verdict with no causes")
	}
	c := rep.Causes[0]
	if c.Kind != depcheck.CauseMemory {
		t.Errorf("cause kind = %s, want memory", c.Kind)
	}
	if !strings.Contains(c.Detail, "next iteration") {
		t.Errorf("cause detail %q does not name the distance-1 dependence", c.Detail)
	}
	if c.Line == 0 {
		t.Error("cause has no source line")
	}
}

func TestReductionIsParallel(t *testing.T) {
	prog, res := check(t, `
float b[100];
float sumOf(int n) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		s = s + b[i];
	}
	return s;
}
int main() { print(sumOf(100)); return 0; }
`)
	wantVerdict(t, loopIn(t, prog, res, "sumOf"), depcheck.Parallel)
}

func TestScalarRecurrenceIsSerial(t *testing.T) {
	prog, res := check(t, `
int a[100];
void fill(int n) {
	int x = 1;
	for (int i = 0; i < n; i++) {
		x = x * 2 + 1;
		a[i] = x;
	}
}
int main() { fill(100); return 0; }
`)
	rep := loopIn(t, prog, res, "fill")
	wantVerdict(t, rep, depcheck.Serial)
	if len(rep.Causes) == 0 || rep.Causes[0].Kind != depcheck.CauseScalar {
		t.Errorf("want a scalar-carried cause, got %v", rep.Causes)
	}
}

func TestNegativeStepDOALL(t *testing.T) {
	prog, res := check(t, `
float a[100];
float b[100];
void rev(int n) {
	for (int i = n - 1; i >= 0; i--) {
		a[i] = b[i] + 1.0;
	}
}
int main() { rev(100); return 0; }
`)
	wantVerdict(t, loopIn(t, prog, res, "rev"), depcheck.Parallel)
}

func TestNegativeStepCarried(t *testing.T) {
	prog, res := check(t, `
float a[100];
void prop(int n) {
	for (int i = n - 2; i >= 0; i--) {
		a[i] = a[i+1] + 1.0;
	}
}
int main() { prop(100); return 0; }
`)
	rep := loopIn(t, prog, res, "prop")
	wantVerdict(t, rep, depcheck.Serial)
	if len(rep.Causes) == 0 || !strings.Contains(rep.Causes[0].Detail, "next iteration") {
		t.Errorf("want a distance-1 memory cause, got %v", rep.Causes)
	}
}

func TestNonAffineSubscriptIsUnknown(t *testing.T) {
	prog, res := check(t, `
int idx[100];
float a[100];
void gather(int n) {
	for (int i = 0; i < n; i++) {
		a[idx[i]] = a[idx[i]] + 1.0;
	}
}
int main() { gather(100); return 0; }
`)
	// a[idx[i]] += ... is a memory reduction (the runtime breaks it), but a
	// second, unbroken read with a non-affine subscript cannot be proved
	// independent of the store.
	rep := loopIn(t, prog, res, "gather")
	if rep.Verdict == depcheck.Serial {
		t.Errorf("non-affine subscript must not be a *definite* dependence: %v", rep.Causes)
	}
}

func TestNonAffineStoreBlocksRead(t *testing.T) {
	prog, res := check(t, `
int idx[100];
float a[100];
float scatterSum(int n) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		a[idx[i]] = 1.0;
		s = s + a[i];
	}
	return s;
}
int main() { print(scatterSum(100)); return 0; }
`)
	rep := loopIn(t, prog, res, "scatterSum")
	wantVerdict(t, rep, depcheck.Unknown)
	if len(rep.Blockers) == 0 {
		t.Fatal("unknown verdict with no blockers")
	}
}

func TestStridedWritesIndependent(t *testing.T) {
	// Writes touch even elements, reads odd ones: GCD/offset disproves flow.
	prog, res := check(t, `
float a[200];
void stride(int n) {
	for (int i = 0; i < n; i++) {
		a[2*i] = a[2*i+1] + 1.0;
	}
}
int main() { stride(100); return 0; }
`)
	wantVerdict(t, loopIn(t, prog, res, "stride"), depcheck.Parallel)
}

func TestRandSerializes(t *testing.T) {
	prog, res := check(t, `
int a[100];
void roll(int n) {
	for (int i = 0; i < n; i++) {
		a[i] = rand();
	}
}
int main() { roll(100); return 0; }
`)
	rep := loopIn(t, prog, res, "roll")
	wantVerdict(t, rep, depcheck.Serial)
	if len(rep.Causes) == 0 || rep.Causes[0].Kind != depcheck.CauseRNG {
		t.Errorf("want an rng-state cause, got %v", rep.Causes)
	}
}

func TestPrintSerializes(t *testing.T) {
	prog, res := check(t, `
void shout(int n) {
	for (int i = 0; i < n; i++) {
		print(i);
	}
}
int main() { shout(3); return 0; }
`)
	rep := loopIn(t, prog, res, "shout")
	wantVerdict(t, rep, depcheck.Serial)
	if len(rep.Causes) == 0 || rep.Causes[0].Kind != depcheck.CauseIO {
		t.Errorf("want an ordered-io cause, got %v", rep.Causes)
	}
}

func TestPureCallIsParallel(t *testing.T) {
	prog, res := check(t, `
float a[100];
float sq(float x) { return x * x; }
void apply(int n) {
	for (int i = 0; i < n; i++) {
		a[i] = sq(a[i]);
	}
}
int main() { apply(100); return 0; }
`)
	wantVerdict(t, loopIn(t, prog, res, "apply"), depcheck.Parallel)
}

func TestCallEffectsBlockProof(t *testing.T) {
	prog, res := check(t, `
float a[100];
float g;
void bump(float x) { g = g + x; }
void walk(int n) {
	for (int i = 0; i < n; i++) {
		bump(a[i]);
	}
}
int main() { walk(100); print(g); return 0; }
`)
	rep := loopIn(t, prog, res, "walk")
	// bump reads and writes global g every iteration: a real carried
	// dependence through the call.
	wantVerdict(t, rep, depcheck.Serial)
}

func TestCallWritesDisjointParam(t *testing.T) {
	prog, res := check(t, `
float a[100];
float b[100];
void copyOne(float dst[], float src[], int i) { dst[i] = src[i]; }
void copyAll(int n) {
	for (int i = 0; i < n; i++) {
		copyOne(a, b, i);
	}
}
int main() { copyAll(100); return 0; }
`)
	// The summary is whole-object, but the two arrays are distinct globals:
	// the callee only reads b and only writes a, so no flow dependence can
	// cross iterations.
	rep := loopIn(t, prog, res, "copyAll")
	wantVerdict(t, rep, depcheck.Parallel)
}

func TestCallSameArrayUnknown(t *testing.T) {
	prog, res := check(t, `
float a[100];
void copyOne(float dst[], float src[], int i) { dst[i] = src[i]; }
void churn(int n) {
	for (int i = 0; i < n; i++) {
		copyOne(a, a, i);
	}
}
int main() { churn(100); return 0; }
`)
	// Read and write of the *same* array through a whole-object summary:
	// the per-element independence is lost, so the proof cannot close.
	rep := loopIn(t, prog, res, "churn")
	wantVerdict(t, rep, depcheck.Unknown)
}

func TestConditionalDependenceIsUnknown(t *testing.T) {
	prog, res := check(t, `
float a[100];
float g;
void scan(int n) {
	for (int i = 0; i < n; i++) {
		if (a[i] > 0.0) {
			g = a[i];
		}
		a[i] = g;
	}
}
int main() { scan(100); return 0; }
`)
	// g is written on some iterations and read on all: a conditional kill.
	// The dependence is real on some inputs but not provable as definite.
	rep := loopIn(t, prog, res, "scan")
	wantVerdict(t, rep, depcheck.Unknown)
}

func TestSameIterationKillIsParallel(t *testing.T) {
	prog, res := check(t, `
float a[100];
float b[100];
float c[100];
void pipe(int n) {
	for (int i = 0; i < n; i++) {
		a[i] = b[i] * 2.0;
		c[i] = a[i] + 1.0;
	}
}
int main() { pipe(100); return 0; }
`)
	// The read of a[i] is dominated by this iteration's write of a[i]:
	// privatization applies even though a is live across iterations.
	wantVerdict(t, loopIn(t, prog, res, "pipe"), depcheck.Parallel)
}

func TestLoopLocalScalarIsPrivate(t *testing.T) {
	prog, res := check(t, `
float a[100];
float b[100];
void tmp(int n) {
	for (int i = 0; i < n; i++) {
		float t = a[i] * 2.0;
		t = t + 1.0;
		b[i] = t;
	}
}
int main() { tmp(100); return 0; }
`)
	wantVerdict(t, loopIn(t, prog, res, "tmp"), depcheck.Parallel)
}

func TestLocalArrayDisjointFromParam(t *testing.T) {
	prog, res := check(t, `
void work(float src[], int n) {
	float tmp[100];
	for (int i = 0; i < n; i++) {
		tmp[i] = src[i];
		src[i] = tmp[i] + 1.0;
	}
}
float a[100];
int main() { work(a, 100); return 0; }
`)
	// tmp is allocated after the caller bound src, so they cannot alias.
	wantVerdict(t, loopIn(t, prog, res, "work"), depcheck.Parallel)
}

func TestParamMayAliasParam(t *testing.T) {
	prog, res := check(t, `
void shift(float dst[], float src[], int n) {
	for (int i = 1; i < n; i++) {
		dst[i] = src[i-1];
	}
}
float a[100];
int main() { shift(a, a, 100); return 0; }
`)
	// dst and src may be the same array (and are, here): the distance-1
	// flow dependence is possible but not definite.
	wantVerdict(t, loopIn(t, prog, res, "shift"), depcheck.Unknown)
}

func TestNestedLoopVerdicts(t *testing.T) {
	_, res := check(t, `
float m[10][10];
float row[10];
void sweep(int n) {
	for (int i = 1; i < n; i++) {
		for (int j = 0; j < n; j++) {
			m[i][j] = m[i-1][j] + row[j];
		}
	}
}
int main() { sweep(10); return 0; }
`)
	var inner, outer *depcheck.LoopReport
	for _, rep := range res.Loops {
		if rep.Region.Func.Name != "sweep" {
			continue
		}
		if outer == nil {
			outer = rep
		} else {
			inner = rep
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("expected two loop reports in sweep")
	}
	// Regions are created outermost-first.
	if outer.Region.ID > inner.Region.ID {
		outer, inner = inner, outer
	}
	// The outer loop carries m[i-1][j] -> m[i][j]. The affine tests alone
	// cannot prove that *definite* (the inner IV j is not affine in the
	// outer loop), but the absint refinement can: main calls sweep(10), so
	// the inner loop provably iterates, and both sides touch m[.][0] —
	// the shared inner induction subscript at its start value — on every
	// outer iteration. Row i written is read by iteration i+1: Serial.
	// The inner loop reads only row i-1, which it never writes: the
	// textbook inner-DOALL.
	wantVerdict(t, outer, depcheck.Serial)
	if len(outer.Causes) == 0 || !strings.Contains(outer.Causes[0].Detail, "m") {
		t.Errorf("outer causes should name m: %v", outer.Causes)
	}
	wantVerdict(t, inner, depcheck.Parallel)
}

func TestCountsAndByRegion(t *testing.T) {
	prog, res := check(t, `
float a[100];
void par(int n) { for (int i = 0; i < n; i++) { a[i] = 1.0; } }
void ser(int n) { for (int i = 1; i < n; i++) { a[i] = a[i-1]; } }
int main() { par(100); ser(100); return 0; }
`)
	p, s, u := res.Counts()
	if p != 1 || s != 1 || u != 0 {
		t.Errorf("Counts() = %d,%d,%d; want 1,1,0", p, s, u)
	}
	for _, rep := range res.Loops {
		if res.ByRegion[rep.Region.ID] != rep {
			t.Errorf("ByRegion[%d] mismatch", rep.Region.ID)
		}
	}
	_ = prog
}
