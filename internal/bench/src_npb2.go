package bench

// srcFT is the NPB FT kernel: spectral method — forward transform (row and
// column DFT passes, each DOALL over lines), evolution in frequency space
// (DOALL over cells), inverse transform, and a checksum reduction, iterated
// over several time steps. The per-line transforms give the nested
// structure where the paper observed a parent-vs-children planning choice.
const srcFT = `
// NPB FT kernel (class W scale-down).
float re[24][24];
float im[24][24];
float wre[24][24];
float wim[24][24];
float expRe[24][24];
float expIm[24][24];
float ckRe;
float ckIm;

void initField(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			int t = i * 37 + j * 11;
			t = t % 53;
			re[i][j] = float(t) / 53.0 - 0.5;
			im[i][j] = 0.0;
		}
	}
}

void initExponents(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			float ang = -0.05 * float(i*i + j*j);
			expRe[i][j] = cos(ang);
			expIm[i][j] = sin(ang);
		}
	}
}

// DFT each row of (re,im) into (wre,wim). DOALL over rows.
void dftRows(int n, float sign) {
	for (int r = 0; r < n; r++) {
		for (int k = 0; k < n; k++) {
			float sr = 0.0;
			float si = 0.0;
			for (int t = 0; t < n; t++) {
				float ang = sign * 6.28318530718 * float(k * t) / float(n);
				float c = cos(ang);
				float s = sin(ang);
				sr = sr + re[r][t] * c - im[r][t] * s;
				si = si + re[r][t] * s + im[r][t] * c;
			}
			wre[r][k] = sr;
			wim[r][k] = si;
		}
	}
}

// DFT each column of (wre,wim) back into (re,im). DOALL over columns.
void dftCols(int n, float sign) {
	for (int c = 0; c < n; c++) {
		for (int k = 0; k < n; k++) {
			float sr = 0.0;
			float si = 0.0;
			for (int t = 0; t < n; t++) {
				float ang = sign * 6.28318530718 * float(k * t) / float(n);
				float cc = cos(ang);
				float ss = sin(ang);
				sr = sr + wre[t][c] * cc - wim[t][c] * ss;
				si = si + wre[t][c] * ss + wim[t][c] * cc;
			}
			re[k][c] = sr;
			im[k][c] = si;
		}
	}
}

// Transpose for the column pass (real FT's inter-processor transpose).
void transpose(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			wre[j][i] = re[i][j];
			wim[j][i] = im[i][j];
		}
	}
}

// Evolve the spectrum: pointwise complex multiply. DOALL.
void evolve(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			float a = re[i][j];
			float b = im[i][j];
			re[i][j] = a * expRe[i][j] - b * expIm[i][j];
			im[i][j] = a * expIm[i][j] + b * expRe[i][j];
		}
	}
}

void checksum(int n) {
	float sr = 0.0;
	float si = 0.0;
	for (int q = 0; q < n; q++) {
		int i = (5 * q) % n;
		int j = (3 * q) % n;
		sr = sr + re[i][j];
		si = si + im[i][j];
	}
	ckRe = ckRe + sr;
	ckIm = ckIm + si;
}

int main() {
	int n = 20;
	int steps = 2;
	initField(n);
	initExponents(n);
	for (int s = 0; s < steps; s++) {
		dftRows(n, -1.0);
		dftCols(n, -1.0);
		evolve(n);
		transpose(n);
		dftRows(n, 1.0);
		dftCols(n, 1.0);
		checksum(n);
	}
	print("ft", ckRe, ckIm);
	return 0;
}
`

// srcBT is the NPB BT kernel: an ADI solver on a 3-D structured grid with
// a 5-component state vector. Each time step computes right-hand sides
// along the three directions (DOALL triple nests) and performs
// line-solves along x, y, and z — serial along the solve axis, DOALL
// across the other two. Many loop nests, like the original (whose MANUAL
// version parallelized 54 regions).
const srcBT = `
// NPB BT kernel (class W scale-down).
float u[10][10][10][5];
float rhs[10][10][10][5];
float forcing[10][10][10][5];

void initU(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				for (int m = 0; m < 5; m++) {
					int t = (i * 13 + j * 7 + k * 3 + m) % 23;
					u[i][j][k][m] = 1.0 + float(t) / 23.0;
					forcing[i][j][k][m] = 0.01 * float(m + 1);
				}
			}
		}
	}
}

void rhsX(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = forcing[i][j][k][m]
						+ 0.1 * (u[i+1][j][k][m] - 2.0 * u[i][j][k][m] + u[i-1][j][k][m]);
				}
			}
		}
	}
}

void rhsY(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m]
						+ 0.1 * (u[i][j+1][k][m] - 2.0 * u[i][j][k][m] + u[i][j-1][k][m]);
				}
			}
		}
	}
}

void rhsZ(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m]
						+ 0.1 * (u[i][j][k+1][m] - 2.0 * u[i][j][k][m] + u[i][j][k-1][m]);
				}
			}
		}
	}
}

// Thomas-like line solve along x: DOALL over (j,k) planes, serial in i.
void xSolve(int n) {
	for (int j = 1; j < n-1; j++) {
		for (int k = 1; k < n-1; k++) {
			for (int i = 1; i < n-1; i++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = (rhs[i][j][k][m] + 0.2 * rhs[i-1][j][k][m]) / 1.2;
				}
			}
			for (int i = n-3; i > 0; i--) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m] - 0.2 * rhs[i+1][j][k][m] / 1.2;
				}
			}
		}
	}
}

void ySolve(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int k = 1; k < n-1; k++) {
			for (int j = 1; j < n-1; j++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = (rhs[i][j][k][m] + 0.2 * rhs[i][j-1][k][m]) / 1.2;
				}
			}
			for (int j = n-3; j > 0; j--) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m] - 0.2 * rhs[i][j+1][k][m] / 1.2;
				}
			}
		}
	}
}

void zSolve(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = (rhs[i][j][k][m] + 0.2 * rhs[i][j][k-1][m]) / 1.2;
				}
			}
			for (int k = n-3; k > 0; k--) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m] - 0.2 * rhs[i][j][k+1][m] / 1.2;
				}
			}
		}
	}
}

void addUpdate(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					u[i][j][k][m] = u[i][j][k][m] + rhs[i][j][k][m];
				}
			}
		}
	}
}

// Face boundary conditions: small DOALL loops a thorough manual port
// annotates even though the benefit is negligible.
void boundaryX(int n) {
	for (int j = 0; j < n; j++) {
		for (int k = 0; k < n; k++) {
			u[0][j][k][0] = u[1][j][k][0];
			u[n-1][j][k][0] = u[n-2][j][k][0];
		}
	}
}

void boundaryY(int n) {
	for (int i = 0; i < n; i++) {
		for (int k = 0; k < n; k++) {
			u[i][0][k][1] = u[i][1][k][1];
			u[i][n-1][k][1] = u[i][n-2][k][1];
		}
	}
}

void boundaryZ(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			u[i][j][0][2] = u[i][j][1][2];
			u[i][j][n-1][2] = u[i][j][n-2][2];
		}
	}
}

// Fourth-order artificial dissipation along x (one of three in real BT;
// the y/z analogues below complete the stage).
void dissipX(int n) {
	for (int i = 2; i < n-2; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m] - 0.01 *
						(u[i-2][j][k][m] - 4.0 * u[i-1][j][k][m] + 6.0 * u[i][j][k][m]
						- 4.0 * u[i+1][j][k][m] + u[i+2][j][k][m]);
				}
			}
		}
	}
}

void dissipY(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 2; j < n-2; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m] - 0.01 *
						(u[i][j-2][k][m] - 4.0 * u[i][j-1][k][m] + 6.0 * u[i][j][k][m]
						- 4.0 * u[i][j+1][k][m] + u[i][j+2][k][m]);
				}
			}
		}
	}
}

void dissipZ(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 2; k < n-2; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = rhs[i][j][k][m] - 0.01 *
						(u[i][j][k-2][m] - 4.0 * u[i][j][k-1][m] + 6.0 * u[i][j][k][m]
						- 4.0 * u[i][j][k+1][m] + u[i][j][k+2][m]);
				}
			}
		}
	}
}

float norm(int n) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				for (int m = 0; m < 5; m++) {
					s = s + u[i][j][k][m] * u[i][j][k][m];
				}
			}
		}
	}
	return sqrt(s);
}

// Per-component rhs error norm: small diagnostic loops a manual port also
// annotates.
float rhsNorm(int n, int m) {
	float s = 0.0;
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			s = s + rhs[i][j][n/2][m] * rhs[i][j][n/2][m];
		}
	}
	return s;
}

int main() {
	int n = 10;
	int steps = 2;
	float diag = 0.0;
	initU(n);
	for (int s = 0; s < steps; s++) {
		rhsX(n);
		rhsY(n);
		rhsZ(n);
		dissipX(n);
		dissipY(n);
		dissipZ(n);
		xSolve(n);
		ySolve(n);
		zSolve(n);
		addUpdate(n);
		boundaryX(n);
		boundaryY(n);
		boundaryZ(n);
		diag = diag + rhsNorm(n, 0) + rhsNorm(n, 4);
	}
	print("bt", norm(n), diag);
	return 0;
}
`

// srcSP is the NPB SP kernel: structurally a sibling of BT (same grid,
// scalar pentadiagonal solves). The interesting property from the paper:
// the MANUAL version parallelized only the fine-grained inner loops, while
// Kremlin recommended the coarse (j,k)-plane parallelization that needs
// privatization to express — giving the 1.85x win.
const srcSP = `
// NPB SP kernel (class W scale-down).
float u[10][10][10][5];
float rhs[10][10][10][5];
float lhsCoef[10][10][10];
float speed[10][10][10];

void initU(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				for (int m = 0; m < 5; m++) {
					int t = (i * 11 + j * 5 + k * 3 + m) % 19;
					u[i][j][k][m] = 1.0 + float(t) / 19.0;
				}
				speed[i][j][k] = 0.5 + 0.01 * float((i + j + k) % 7);
			}
		}
	}
}

void computeRhs(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = 0.05 * (u[i+1][j][k][m] + u[i-1][j][k][m]
						+ u[i][j+1][k][m] + u[i][j-1][k][m]
						+ u[i][j][k+1][m] + u[i][j][k-1][m]
						- 6.0 * u[i][j][k][m]);
				}
			}
		}
	}
}

void lhsInit(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				lhsCoef[i][j][k] = 1.0 / (1.0 + 0.4 * speed[i][j][k]);
			}
		}
	}
}

// Pentadiagonal-ish sweep along x: coarse parallelism across (j,k).
void spXSolve(int n) {
	for (int j = 1; j < n-1; j++) {
		for (int k = 1; k < n-1; k++) {
			for (int i = 2; i < n-1; i++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = (rhs[i][j][k][m]
						+ 0.15 * rhs[i-1][j][k][m] + 0.05 * rhs[i-2][j][k][m]) * lhsCoef[i][j][k];
				}
			}
		}
	}
}

void spYSolve(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int k = 1; k < n-1; k++) {
			for (int j = 2; j < n-1; j++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = (rhs[i][j][k][m]
						+ 0.15 * rhs[i][j-1][k][m] + 0.05 * rhs[i][j-2][k][m]) * lhsCoef[i][j][k];
				}
			}
		}
	}
}

void spZSolve(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 2; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					rhs[i][j][k][m] = (rhs[i][j][k][m]
						+ 0.15 * rhs[i][j][k-1][m] + 0.05 * rhs[i][j][k-2][m]) * lhsCoef[i][j][k];
				}
			}
		}
	}
}

void addUpdate(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				for (int m = 0; m < 5; m++) {
					u[i][j][k][m] = u[i][j][k][m] + rhs[i][j][k][m];
				}
			}
		}
	}
}

// txinvr-like per-plane scaling: small, annotated by the manual port.
void txinvr(int n) {
	for (int j = 1; j < n-1; j++) {
		for (int k = 1; k < n-1; k++) {
			rhs[1][j][k][0] = rhs[1][j][k][0] * speed[1][j][k];
			rhs[n-2][j][k][0] = rhs[n-2][j][k][0] * speed[n-2][j][k];
		}
	}
}

void pinvr(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int k = 1; k < n-1; k++) {
			rhs[i][1][k][1] = rhs[i][1][k][1] * 0.98;
			rhs[i][n-2][k][1] = rhs[i][n-2][k][1] * 0.98;
		}
	}
}

// tzetar-like block back-substitution scaling: DOALL triple nest.
void tzetar(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				float sp0 = speed[i][j][k];
				rhs[i][j][k][3] = rhs[i][j][k][3] * sp0;
				rhs[i][j][k][4] = rhs[i][j][k][4] * sp0 + 0.1 * rhs[i][j][k][0];
			}
		}
	}
}

float norm(int n) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				for (int m = 0; m < 5; m++) {
					s = s + u[i][j][k][m] * u[i][j][k][m];
				}
			}
		}
	}
	return sqrt(s);
}

// Small per-plane diagnostic a manual port also annotates.
float planeErr(int n, int j) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		for (int k = 0; k < n; k++) {
			s = s + rhs[i][j][k][0] * rhs[i][j][k][0];
		}
	}
	return s;
}

int main() {
	int n = 10;
	int steps = 2;
	float diag = 0.0;
	initU(n);
	for (int s = 0; s < steps; s++) {
		computeRhs(n);
		lhsInit(n);
		txinvr(n);
		spXSolve(n);
		spYSolve(n);
		pinvr(n);
		spZSolve(n);
		tzetar(n);
		addUpdate(n);
		diag = diag + planeErr(n, n / 2);
	}
	print("sp", norm(n), diag);
	return 0;
}
`

// srcLU is the NPB LU kernel: SSOR with lower/upper triangular wavefront
// sweeps. The sweep loops carry dependences along every axis, but the
// wavefront (hyperplane) parallelism is visible to HCPA as high
// self-parallelism with SP well below the iteration count — a DOACROSS
// region requiring restructuring, exactly the paper's "non-intuitive
// restructuring" case.
const srcLU = `
// NPB LU kernel (class W scale-down).
float v[12][12][12];
float rsd[12][12][12];
float frct[12][12][12];
float coef[12][12][12];

void initAll(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				int t = (i * 29 + j * 13 + k * 5) % 41;
				v[i][j][k] = float(t) / 41.0;
				frct[i][j][k] = 0.02 * float((i + 2*j + 3*k) % 11);
			}
		}
	}
}

// Residual: DOALL stencil.
void computeRsd(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				rsd[i][j][k] = frct[i][j][k]
					+ 0.1 * (v[i+1][j][k] + v[i-1][j][k]
					+ v[i][j+1][k] + v[i][j-1][k]
					+ v[i][j][k+1] + v[i][j][k-1]
					- 6.0 * v[i][j][k]);
			}
		}
	}
}

// jacld-like coefficient preparation: DOALL, feeds the lower sweep.
void jacld(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				coef[i][j][k] = 1.0 / (1.36 + 0.02 * v[i][j][k]);
			}
		}
	}
}

// Lower-triangular sweep: wavefront dependences on (i-1, j-1, k-1).
void blts(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				rsd[i][j][k] = (rsd[i][j][k]
					+ 0.12 * rsd[i-1][j][k]
					+ 0.12 * rsd[i][j-1][k]
					+ 0.12 * rsd[i][j][k-1]) * coef[i][j][k];
			}
		}
	}
}

// Upper-triangular sweep: wavefront dependences on (i+1, j+1, k+1).
void buts(int n) {
	for (int i = n-2; i > 0; i--) {
		for (int j = n-2; j > 0; j--) {
			for (int k = n-2; k > 0; k--) {
				rsd[i][j][k] = (rsd[i][j][k]
					+ 0.12 * rsd[i+1][j][k]
					+ 0.12 * rsd[i][j+1][k]
					+ 0.12 * rsd[i][j][k+1]) / 1.36;
			}
		}
	}
}

// Apply the update: DOALL.
void update(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				v[i][j][k] = v[i][j][k] + 0.9 * rsd[i][j][k];
			}
		}
	}
}

float norm(int n) {
	float s = 0.0;
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				s = s + rsd[i][j][k] * rsd[i][j][k];
			}
		}
	}
	return sqrt(s);
}

// Small per-plane diagnostics a manual port also annotates.
float planeNorm(int n, int i) {
	float s = 0.0;
	for (int j = 0; j < n; j++) {
		for (int k = 0; k < n; k++) {
			s = s + rsd[i][j][k] * rsd[i][j][k];
		}
	}
	return s;
}

void scaleRsd(int n, float a) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			rsd[i][j][1] = rsd[i][j][1] * a;
			rsd[i][j][n-2] = rsd[i][j][n-2] * a;
		}
	}
}

int main() {
	int n = 12;
	int steps = 3;
	float diag = 0.0;
	initAll(n);
	for (int s = 0; s < steps; s++) {
		computeRsd(n);
		scaleRsd(n, 0.995);
		jacld(n);
		blts(n);
		buts(n);
		update(n);
		diag = diag + planeNorm(n, n / 2);
	}
	print("lu", norm(n), diag);
	return 0;
}
`
