package bench

import (
	"testing"

	"kremlin/internal/planner"
	"kremlin/internal/regions"
)

// These tests pin the per-benchmark properties the paper's narrative
// depends on.

func load(t *testing.T, name string) *Compiled {
	t.Helper()
	c, err := Load(ByName(name))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func planLabels(t *testing.T, c *Compiled) map[string]bool {
	t.Helper()
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	out := map[string]bool{}
	for _, r := range plan.Recs {
		out[r.Stats.Region.Func.Name+"/"+r.Stats.Region.Kind.String()] = true
	}
	return out
}

// TestEPSingleRegionPlan: ep's plan is exactly one region — the
// reduction-bearing main loop (the paper's Figure 6: MANUAL 1, Kremlin 1).
func TestEPSingleRegionPlan(t *testing.T) {
	c := load(t, "ep")
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	if len(plan.Recs) != 1 {
		t.Fatalf("ep plan = %v, want exactly 1 region", plan.Labels())
	}
	r := plan.Recs[0].Stats.Region
	if r.Func.Name != "epMain" || r.Kind != regions.LoopRegion {
		t.Errorf("ep plan picked %s, want epMain's loop", plan.Recs[0].Label())
	}
	if !plan.Recs[0].Stats.HasReduction {
		t.Error("epMain's loop should carry the reduction annotation")
	}
}

// TestAmmpTinyReductionExcluded: ammp's per-step energy reduction is too
// small to amortize OpenMP reduction overhead (§5.1).
func TestAmmpTinyReductionExcluded(t *testing.T) {
	c := load(t, "ammp")
	labels := planLabels(t, c)
	if labels["accumEnergy/loop"] {
		t.Error("ammp: accumEnergy's tiny reduction loop must be rejected")
	}
	if !labels["forces/loop"] {
		t.Error("ammp: the force loop must be planned")
	}
}

// TestISCoarseRegionFound: Kremlin finds the block-level parallelism in
// countBlocks even though its inner loop is a serial digest chain.
func TestISCoarseRegionFound(t *testing.T) {
	c := load(t, "is")
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	found := false
	for _, r := range plan.Recs {
		reg := r.Stats.Region
		if reg.Func.Name == "countBlocks" && reg.Kind == regions.LoopRegion &&
			reg.Parent.Kind == regions.FuncRegion {
			found = true
		}
	}
	if !found {
		t.Errorf("is: coarse countBlocks loop missing from plan %v", plan.Labels())
	}
	// The MANUAL (inner-loop) plan misses it.
	manual := map[int]bool{}
	for _, id := range ManualPlan(ByName("is"), c.Summary) {
		manual[id] = true
	}
	for _, r := range plan.Recs {
		reg := r.Stats.Region
		if reg.Func.Name == "countBlocks" && reg.Parent.Kind == regions.FuncRegion && manual[reg.ID] {
			t.Error("is: MANUAL-inner unexpectedly includes the coarse region")
		}
	}
}

// TestSPCoarsePlanDiffers: sp's Kremlin plan picks coarse solver loops the
// inner-loop MANUAL style misses (the paper's 1.85x case).
func TestSPCoarsePlanDiffers(t *testing.T) {
	c := load(t, "sp")
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	kremlinIDs := map[int]bool{}
	for _, r := range plan.Recs {
		kremlinIDs[r.Stats.Region.ID] = true
	}
	manualIDs := ManualPlan(ByName("sp"), c.Summary)
	overlap := 0
	for _, id := range manualIDs {
		if kremlinIDs[id] {
			overlap++
		}
	}
	if overlap == len(manualIDs) && len(manualIDs) == len(kremlinIDs) {
		t.Error("sp: Kremlin and MANUAL plans identical; the coarse/fine split is gone")
	}
}

// TestLUWavefrontIsDOACROSS: lu's triangular sweeps expose hyperplane
// parallelism — SP well above 1, well below the iteration count, not
// DOALL.
func TestLUWavefrontIsDOACROSS(t *testing.T) {
	c := load(t, "lu")
	found := false
	for _, st := range c.Summary.Executed {
		if st.Region.Func.Name != "blts" || st.Region.Kind != regions.LoopRegion {
			continue
		}
		if st.Region.Parent.Kind != regions.FuncRegion {
			continue // outermost sweep loop only
		}
		found = true
		if st.SelfP < 2 {
			t.Errorf("blts outer SP = %.1f, want > 2 (wavefront)", st.SelfP)
		}
		if st.DOALL {
			t.Error("blts sweep misclassified DOALL")
		}
	}
	if !found {
		t.Fatal("blts loop not found")
	}
}

// TestCGReductionLoopsPlanned: cg's dot products clear the reduction-work
// threshold and join the plan.
func TestCGReductionsPlanned(t *testing.T) {
	c := load(t, "cg")
	labels := planLabels(t, c)
	if !labels["dot/loop"] {
		t.Error("cg: dot-product reduction loop missing from plan")
	}
	if !labels["matvec/loop"] {
		t.Error("cg: sparse matvec row loop missing from plan")
	}
}

// TestTrackingFigure2Localization: in fillFeatures only the innermost loop
// carries high self-parallelism.
func TestTrackingFigure2Localization(t *testing.T) {
	c, err := Load(Tracking())
	if err != nil {
		t.Fatal(err)
	}
	var depths []float64 // SP by nesting depth 1,2,3
	byDepth := map[int]float64{}
	for _, st := range c.Summary.Executed {
		if st.Region.Func.Name != "fillFeatures" || st.Region.Kind != regions.LoopRegion {
			continue
		}
		depth := 0
		for p := st.Region.Parent; p != nil; p = p.Parent {
			if p.Kind == regions.LoopRegion {
				depth++
			}
		}
		byDepth[depth] = st.SelfP
	}
	if len(byDepth) != 3 {
		t.Fatalf("loop depths found: %v", byDepth)
	}
	depths = []float64{byDepth[0], byDepth[1], byDepth[2]}
	if depths[2] <= depths[0] {
		t.Errorf("innermost SP %.1f should exceed outermost %.1f", depths[2], depths[0])
	}
	// Total parallelism fails to localize: the outer loop inherits it.
	for _, st := range c.Summary.Executed {
		if st.Region.Func.Name == "fillFeatures" && st.Region.Kind == regions.LoopRegion &&
			st.Region.Parent.Kind == regions.FuncRegion {
			if st.TotalP < depths[2] {
				t.Errorf("outer TotalP %.1f should inherit inner parallelism %.1f", st.TotalP, depths[2])
			}
		}
	}
}

// TestManualPlansNonNested: the coarse MANUAL selection never nests
// pragmas within one function.
func TestManualPlansNonNested(t *testing.T) {
	for _, b := range All() {
		if b.Style != ManualCoarse {
			continue
		}
		c := load(t, b.Name)
		ids := ManualPlan(b, c.Summary)
		set := map[int]bool{}
		for _, id := range ids {
			set[id] = true
		}
		for _, id := range ids {
			r := c.Summary.Prog.Regions[id]
			for p := r.Parent; p != nil; p = p.Parent {
				if set[p.ID] {
					t.Errorf("%s: MANUAL nests %s inside %s", b.Name, r.Label(), p.Label())
				}
			}
		}
	}
}

// TestBenchmarksDeterministic: profiling twice produces identical profiles
// (the whole pipeline is deterministic).
func TestBenchmarksDeterministic(t *testing.T) {
	b := ByName("mg")
	c := load(t, "mg")
	prog2, err := Load(&Benchmark{Name: "mg-again", Suite: b.Suite, Source: b.Source, Style: b.Style, Input: b.Input})
	if err != nil {
		t.Fatal(err)
	}
	if c.Profile.TotalWork() != prog2.Profile.TotalWork() {
		t.Errorf("work differs: %d vs %d", c.Profile.TotalWork(), prog2.Profile.TotalWork())
	}
	if len(c.Profile.Dict.Entries) != len(prog2.Profile.Dict.Entries) {
		t.Errorf("alphabet differs: %d vs %d", len(c.Profile.Dict.Entries), len(prog2.Profile.Dict.Entries))
	}
}
