package bench

import (
	"testing"

	"kremlin/internal/regions"
)

// TestAllBenchmarksCompileAndProfile is the suite gate: every workload
// must compile, run instrumented to completion, and produce a profile
// whose work matches a plain run.
func TestAllBenchmarksCompileAndProfile(t *testing.T) {
	progs := append(All(), Tracking())
	for _, b := range progs {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, err := Load(b)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Program.Run(nil)
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			if res.Work == 0 {
				t.Fatal("no work")
			}
			if got := c.Profile.TotalWork(); got != res.Work {
				t.Errorf("profiled work %d != plain work %d", got, res.Work)
			}
			var loops int
			for _, st := range c.Summary.Executed {
				if st.Region.Kind == regions.LoopRegion {
					loops++
				}
			}
			if loops < 3 {
				t.Errorf("only %d executed loop regions; workload too trivial", loops)
			}
			t.Logf("%s: work=%d loops=%d dictEntries=%d rawRecords=%d",
				b.Name, res.Work, loops, len(c.Profile.Dict.Entries), c.Profile.Dict.RawCount)
		})
	}
}
