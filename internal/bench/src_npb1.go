package bench

// srcEP is the NPB EP (embarrassingly parallel) kernel: generate pairs of
// pseudo-random deviates from independently computed per-index seeds (the
// seed skip-ahead that makes real EP parallel), accept those inside the
// unit circle, and accumulate Gaussian sums and per-annulus counts. The
// main loop is one big reduction region with ample work — the paper's
// example of a reduction that *should* be parallelized.
const srcEP = `
// NPB EP kernel (class W scale-down).
float q[10];
float sx;
float sy;
int accepted;

// Per-index seed: a mixing hash standing in for EP's LCG skip-ahead.
int seedFor(int k) {
	int s = k * 2654435761 + 1013904223;
	s = s - (s / 65536) * 65536;
	if (s < 0) { s = -s; }
	return s * 31 + 17;
}

float unitRand(int s) {
	int t = s * 1103515245 + 12345;
	t = t - (t / 32768) * 32768;
	if (t < 0) { t = -t; }
	return float(t) / 32768.0;
}

void epMain(int n) {
	for (int k = 0; k < n; k++) {
		int s = seedFor(k);
		float x = 2.0 * unitRand(s) - 1.0;
		float y = 2.0 * unitRand(s + 7919) - 1.0;
		float t = x * x + y * y;
		if (t <= 1.0) {
			float f = sqrt(-2.0 * log(t + 0.0000001) / (t + 0.0000001));
			float gx = x * f;
			float gy = y * f;
			float ax = fabs(gx);
			float ay = fabs(gy);
			int l = int(max(ax, ay));
			if (l > 9) { l = 9; }
			q[l] += 1.0;
			sx = sx + gx;
			sy = sy + gy;
			accepted = accepted + 1;
		}
	}
}

int main() {
	int n = 8192;
	for (int i = 0; i < 10; i++) {
		q[i] = 0.0;
	}
	epMain(n);
	float qs = 0.0;
	for (int i = 0; i < 10; i++) {
		qs = qs + q[i];
	}
	print("ep", accepted, sx, sy, qs);
	return 0;
}
`

// srcIS is the NPB IS (integer sort) kernel: bucketed counting sort of
// random keys, repeated over several ranking rounds. The block-local
// counting phase is the coarse-grained DOALL opportunity the third-party
// MANUAL version missed (it parallelized only the obvious fine-grained
// loops), giving Kremlin its 1.46x win in the paper.
const srcIS = `
// NPB IS kernel (class W scale-down).
int keys[8192];
int hist[512];
int blockHist[16][512];
int blockSum[16];
int ranks[8192];
int checksum;

void genKeys(int n) {
	for (int i = 0; i < n; i++) {
		int s = i * 1103515245 + 12345;
		s = s - (s / 512) * 512;
		if (s < 0) { s = -s; }
		keys[i] = s;
	}
}

// Coarse phase: each block counts its own slice and folds a sequential
// digest over it. Blocks are independent (coarse DOALL), but within a
// block the digest chain serializes the scan — the parallelism is only
// exploitable at the block level, which is what the MANUAL version missed.
void countBlocks(int n, int nblocks) {
	int bsize = n / nblocks;
	for (int b = 0; b < nblocks; b++) {
		for (int v = 0; v < 512; v++) {
			blockHist[b][v] = 0;
		}
		int lo = b * bsize;
		int digest = b;
		for (int i = 0; i < bsize; i++) {
			int k = keys[lo + i];
			digest = (digest * 13 + k) % 65536;
			blockHist[b][k] += 1;
		}
		blockSum[b] = digest;
	}
}

void mergeHist(int nblocks) {
	for (int v = 0; v < 512; v++) {
		int s = 0;
		for (int b = 0; b < nblocks; b++) {
			s = s + blockHist[b][v];
		}
		hist[v] = s;
	}
}

// Serial prefix sum over buckets.
void prefixSum() {
	for (int v = 1; v < 512; v++) {
		hist[v] = hist[v] + hist[v-1];
	}
}

void rankKeys(int n) {
	for (int i = 0; i < n; i++) {
		int k = keys[i];
		hist[k] = hist[k] - 1;
		ranks[i] = hist[k];
	}
}

int main() {
	int n = 8192;
	int rounds = 3;
	for (int r = 0; r < rounds; r++) {
		genKeys(n);
		countBlocks(n, 16);
		mergeHist(16);
		prefixSum();
		rankKeys(n);
		checksum = checksum + ranks[n / 2] + hist[0] + blockSum[r % 16];
	}
	print("is", checksum);
	return 0;
}
`

// srcCG is the NPB CG kernel: conjugate gradient with a sparse
// matrix-vector product (rows DOALL, per-row dot-product reduction),
// vector dot products, and axpy updates; the outer CG iteration is a
// serial dependence chain.
const srcCG = `
// NPB CG kernel (class W scale-down).
float aval[3360];
int colidx[3360];
int rowstart[421];
float x[420];
float z[420];
float p[420];
float q[420];
float r[420];
float rho;
float alpha;
float beta;
float dnorm;

void makeMatrix(int n, int nzper) {
	for (int i = 0; i < n; i++) {
		rowstart[i] = i * nzper;
		for (int j = 0; j < nzper; j++) {
			int t = i * 7 + j * 131 + 1;
			t = t - (t / n) * n;
			if (t < 0) { t = -t; }
			colidx[i * nzper + j] = t;
			aval[i * nzper + j] = 1.0 / float(j + 1);
		}
		// Diagonal dominance.
		colidx[i * nzper] = i;
		aval[i * nzper] = float(nzper) + 2.0;
	}
	rowstart[n] = n * nzper;
}

void matvec(int n) {
	for (int i = 0; i < n; i++) {
		float s = 0.0;
		for (int k = rowstart[i]; k < rowstart[i+1]; k++) {
			s = s + aval[k] * p[colidx[k]];
		}
		q[i] = s;
	}
}

float dot(float a[], float b[], int n) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		s = s + a[i] * b[i];
	}
	return s;
}

void initVectors(int n) {
	for (int i = 0; i < n; i++) {
		x[i] = 1.0;
		z[i] = 0.0;
		r[i] = 1.0;
		p[i] = 1.0;
	}
}

void axpyZ(int n) {
	for (int i = 0; i < n; i++) {
		z[i] = z[i] + alpha * p[i];
	}
}

void axpyR(int n) {
	for (int i = 0; i < n; i++) {
		r[i] = r[i] - alpha * q[i];
	}
}

void updateP(int n) {
	for (int i = 0; i < n; i++) {
		p[i] = r[i] + beta * p[i];
	}
}

int main() {
	int n = 420;
	int nzper = 8;
	int iters = 6;
	makeMatrix(n, nzper);
	initVectors(n);
	rho = dot(r, r, n);
	for (int it = 0; it < iters; it++) {
		matvec(n);
		float pq = dot(p, q, n);
		alpha = rho / pq;
		axpyZ(n);
		axpyR(n);
		float rho0 = rho;
		rho = dot(r, r, n);
		beta = rho / rho0;
		updateP(n);
	}
	dnorm = sqrt(dot(z, z, n));
	print("cg", dnorm, rho);
	return 0;
}
`

// srcMG is the NPB MG kernel: V-cycle multigrid on a 3-D grid — residual,
// restriction, prolongation, and smoothing stencils, each a DOALL triple
// nest, applied across three grid levels.
const srcMG = `
// NPB MG kernel (class W scale-down).
float u1[18][18][18];
float v1[18][18][18];
float r1[18][18][18];
float u2[10][10][10];
float r2[10][10][10];
float u3[6][6][6];
float r3[6][6][6];

void zero3(float a[][][], int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			for (int k = 0; k < n; k++) {
				a[i][j][k] = 0.0;
			}
		}
	}
}

void initSource(int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				int t = i * 31 + j * 17 + k * 7;
				t = t - (t / 97) * 97;
				v1[i][j][k] = float(t) / 97.0 - 0.5;
			}
		}
	}
}

// r = v - A u (7-point stencil residual).
void resid(float u[][][], float v[][][], float r[][][], int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				r[i][j][k] = v[i][j][k] - 6.0 * u[i][j][k]
					+ u[i-1][j][k] + u[i+1][j][k]
					+ u[i][j-1][k] + u[i][j+1][k]
					+ u[i][j][k-1] + u[i][j][k+1];
			}
		}
	}
}

// Restrict fine residual to the coarse grid.
void restrictGrid(float fine[][][], float coarse[][][], int cn) {
	for (int i = 1; i < cn-1; i++) {
		for (int j = 1; j < cn-1; j++) {
			for (int k = 1; k < cn-1; k++) {
				coarse[i][j][k] = 0.5 * fine[2*i][2*j][2*k]
					+ 0.25 * (fine[2*i-1][2*j][2*k] + fine[2*i+1][2*j][2*k])
					+ 0.125 * (fine[2*i][2*j-1][2*k] + fine[2*i][2*j+1][2*k]);
			}
		}
	}
}

// Prolongate the coarse correction onto the fine grid.
void prolong(float coarse[][][], float fine[][][], int cn) {
	for (int i = 1; i < cn-1; i++) {
		for (int j = 1; j < cn-1; j++) {
			for (int k = 1; k < cn-1; k++) {
				fine[2*i][2*j][2*k] = fine[2*i][2*j][2*k] + coarse[i][j][k];
				fine[2*i-1][2*j][2*k] = fine[2*i-1][2*j][2*k] + 0.5 * coarse[i][j][k];
				fine[2*i][2*j-1][2*k] = fine[2*i][2*j-1][2*k] + 0.5 * coarse[i][j][k];
			}
		}
	}
}

// Jacobi smoothing step (reads r, writes u: DOALL).
void smooth(float u[][][], float r[][][], int n) {
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				u[i][j][k] = u[i][j][k] + 0.8 * r[i][j][k] / 6.0;
			}
		}
	}
}

// comm3-like periodic boundary exchange: small DOALL face loops.
void comm3(float a[][][], int n) {
	for (int j = 0; j < n; j++) {
		for (int k = 0; k < n; k++) {
			a[0][j][k] = a[n-2][j][k];
			a[n-1][j][k] = a[1][j][k];
		}
	}
	for (int i = 0; i < n; i++) {
		for (int k = 0; k < n; k++) {
			a[i][0][k] = a[i][n-2][k];
			a[i][n-1][k] = a[i][1][k];
		}
	}
}

float gridNorm(float a[][][], int n) {
	float s = 0.0;
	for (int i = 1; i < n-1; i++) {
		for (int j = 1; j < n-1; j++) {
			for (int k = 1; k < n-1; k++) {
				s = s + a[i][j][k] * a[i][j][k];
			}
		}
	}
	return sqrt(s / float(n*n*n));
}

int main() {
	int cycles = 2;
	zero3(u1, 18);
	zero3(u2, 10);
	zero3(u3, 6);
	initSource(18);
	for (int c = 0; c < cycles; c++) {
		resid(u1, v1, r1, 18);
		restrictGrid(r1, r2, 10);
		zero3(u2, 10);
		smooth(u2, r2, 10);
		restrictGrid(r2, r3, 6);
		zero3(u3, 6);
		smooth(u3, r3, 6);
		prolong(u3, u2, 6);
		smooth(u2, r2, 10);
		prolong(u2, u1, 10);
		comm3(u1, 18);
		smooth(u1, r1, 18);
	}
	resid(u1, v1, r1, 18);
	print("mg", gridNorm(r1, 18));
	return 0;
}
`
