package bench

import (
	"testing"

	"kremlin/internal/planner"
)

// goldenPlans pins the exact OpenMP plan (labels, in order) for every
// workload. The pipeline is deterministic, so any diff here is a real
// behavior change in the front end, the HCPA runtime, the metrics, or the
// planner — review it deliberately and regenerate with `go run
// ./cmd/dumpplans` if the change is intended.
var goldenPlans = map[string][]string{
	"ammp": {
		"ammp.kr:43 loop forces",
		"ammp.kr:67 loop integrate",
		"ammp.kr:30 loop buildNeighbors",
		"ammp.kr:17 loop placeAtoms",
	},
	"art": {
		"art.kr:37 loop computeActivations",
		"art.kr:61 loop updateWinner",
		"art.kr:12 loop initWeights",
		"art.kr:28 loop loadWindow",
		"art.kr:19 loop initImage",
	},
	"equake": {
		"equake.kr:39 loop smvp",
		"equake.kr:50 loop advance",
		"equake.kr:14 loop buildMatrix",
		"equake.kr:58 loop accumNorm",
		"equake.kr:29 loop initState",
	},
	"bt": {
		"bt.kr:79 loop ySolve",
		"bt.kr:96 loop zSolve",
		"bt.kr:62 loop xSolve",
		"bt.kr:184 loop dissipZ",
		"bt.kr:170 loop dissipY",
		"bt.kr:157 loop dissipX",
		"bt.kr:8 loop initU",
		"bt.kr:22 loop rhsX",
		"bt.kr:35 loop rhsY",
		"bt.kr:48 loop rhsZ",
		"bt.kr:113 loop addUpdate",
		"bt.kr:199 loop norm",
		"bt.kr:136 loop boundaryY",
		"bt.kr:145 loop boundaryZ",
		"bt.kr:127 loop boundaryX",
	},
	"cg": {
		"cg.kr:34 loop matvec",
		"cg.kr:17 loop makeMatrix",
		"cg.kr:45 loop dot",
		"cg.kr:61 loop axpyZ",
		"cg.kr:67 loop axpyR",
		"cg.kr:73 loop updateP",
		"cg.kr:52 loop initVectors",
	},
	"ep": {
		"ep.kr:24 loop epMain",
	},
	"ft": {
		"ft.kr:35 loop dftRows",
		"ft.kr:54 loop dftCols",
		"ft.kr:83 loop evolve",
		"ft.kr:24 loop initExponents",
		"ft.kr:73 loop transpose",
		"ft.kr:13 loop initField",
	},
	"is": {
		"is.kr:25 loop countBlocks",
		"is.kr:11 loop genKeys",
		"is.kr:58 loop rankKeys",
		"is.kr:41 loop mergeHist",
	},
	"lu": {
		"lu.kr:22 loop computeRsd",
		"lu.kr:48 loop blts",
		"lu.kr:62 loop buts",
		"lu.kr:9 loop initAll",
		"lu.kr:37 loop jacld",
		"lu.kr:76 loop update",
		"lu.kr:87 loop norm",
		"lu.kr:109 loop scaleRsd",
	},
	"mg": {
		"mg.kr:35 loop resid",
		"mg.kr:75 loop smooth",
		"mg.kr:22 loop initSource",
		"mg.kr:62 loop prolong",
		"mg.kr:49 loop restrictGrid",
		"mg.kr:102 loop gridNorm",
		"mg.kr:12 loop zero3",
		"mg.kr:92 loop comm3",
		"mg.kr:86 loop comm3",
	},
	"sp": {
		"sp.kr:24 loop computeRhs",
		"sp.kr:9 loop initU",
		"sp.kr:62 loop spYSolve",
		"sp.kr:75 loop spZSolve",
		"sp.kr:49 loop spXSolve",
		"sp.kr:88 loop addUpdate",
		"sp.kr:133 loop norm",
		"sp.kr:38 loop lhsInit",
		"sp.kr:120 loop tzetar",
		"sp.kr:101 loop txinvr",
		"sp.kr:110 loop pinvr",
	},
	"tracking": {
		"tracking.kr:64 loop calcLambda",
		"tracking.kr:91 loop fillFeatures",
		"tracking.kr:106 loop getInterpPatch",
		"tracking.kr:44 loop calcSobelDX",
		"tracking.kr:54 loop calcSobelDY",
		"tracking.kr:22 loop imageBlurX",
		"tracking.kr:34 loop imageBlurY",
		"tracking.kr:13 loop loadImage",
	},
}

func TestGoldenPlans(t *testing.T) {
	all := append(All(), Tracking())
	for _, b := range all {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, ok := goldenPlans[b.Name]
			if !ok {
				t.Fatalf("no golden plan for %s; regenerate with cmd/dumpplans", b.Name)
			}
			c, err := Load(b)
			if err != nil {
				t.Fatal(err)
			}
			plan := c.Program.Plan(c.Profile, planner.OpenMP())
			got := plan.Labels()
			if len(got) != len(want) {
				t.Fatalf("plan size %d, want %d:\ngot  %v\nwant %v", len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("rec %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}
