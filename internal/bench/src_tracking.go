package bench

// srcTracking is the feature-tracking benchmark from the San Diego Vision
// Benchmark Suite, the running example of the paper's Figures 2 and 3:
// separable Gaussian blur (two loop nests), Sobel gradients, a per-pixel
// corner ("lambda") computation, the fillFeatures nest of Figure 2 — where
// only the innermost loop over features is parallel — and per-feature
// patch interpolation.
const srcTracking = `
// SD-VBS feature tracking (scaled input).
float img[34][34];
float blurX[34][34];
float blur[34][34];
float dX[34][34];
float dY[34][34];
float lambda[34][34];
float features[3][32];
float patches[32][49];

void loadImage(int rows, int cols) {
	for (int i = 0; i < rows; i++) {
		for (int j = 0; j < cols; j++) {
			img[i][j] = float((i * j + 7 * i + 3 * j) % 61) / 61.0;
		}
	}
}

// Horizontal blur pass (paper lines 37-45).
void imageBlurX(int rows, int cols) {
	for (int i = 0; i < rows; i++) {
		for (int j = 2; j < cols - 2; j++) {
			blurX[i][j] = 0.0625 * img[i][j-2] + 0.25 * img[i][j-1]
				+ 0.375 * img[i][j]
				+ 0.25 * img[i][j+1] + 0.0625 * img[i][j+2];
		}
	}
}

// Vertical blur pass (paper lines 49-58).
void imageBlurY(int rows, int cols) {
	for (int i = 2; i < rows - 2; i++) {
		for (int j = 0; j < cols; j++) {
			blur[i][j] = 0.0625 * blurX[i-2][j] + 0.25 * blurX[i-1][j]
				+ 0.375 * blurX[i][j]
				+ 0.25 * blurX[i+1][j] + 0.0625 * blurX[i+2][j];
		}
	}
}

// Sobel derivative in x (paper calcSobel_dX).
void calcSobelDX(int rows, int cols) {
	for (int i = 1; i < rows - 1; i++) {
		for (int j = 1; j < cols - 1; j++) {
			dX[i][j] = blur[i-1][j+1] + 2.0 * blur[i][j+1] + blur[i+1][j+1]
				- blur[i-1][j-1] - 2.0 * blur[i][j-1] - blur[i+1][j-1];
		}
	}
}

// Sobel derivative in y (paper calcSobel_dY).
void calcSobelDY(int rows, int cols) {
	for (int i = 1; i < rows - 1; i++) {
		for (int j = 1; j < cols - 1; j++) {
			dY[i][j] = blur[i+1][j-1] + 2.0 * blur[i+1][j] + blur[i+1][j+1]
				- blur[i-1][j-1] - 2.0 * blur[i-1][j] - blur[i-1][j+1];
		}
	}
}

// Minimum eigenvalue of the structure tensor, per pixel.
void calcLambda(int rows, int cols, int win) {
	for (int i = win; i < rows - win; i++) {
		for (int j = win; j < cols - win; j++) {
			float gxx = 0.0;
			float gxy = 0.0;
			float gyy = 0.0;
			for (int a = -2; a <= 2; a++) {
				for (int b = -2; b <= 2; b++) {
					float gx = dX[i+a][j+b];
					float gy = dY[i+a][j+b];
					gxx = gxx + gx * gx;
					gxy = gxy + gx * gy;
					gyy = gyy + gy * gy;
				}
			}
			float tr = gxx + gyy;
			float det = gxx * gyy - gxy * gxy;
			float disc = sqrt(tr * tr - 4.0 * det + 0.0001);
			lambda[i][j] = 0.5 * (tr - disc);
		}
	}
}

// The Figure-2 nest: scan pixels, keep the best nFeatures corners. The i/j
// loops carry dependences through the features arrays; only the innermost
// loop over k is parallel.
void fillFeatures(int rows, int cols, int win, int nFeatures) {
	for (int i = win; i < rows - win; i++) {
		for (int j = win; j < cols - win; j++) {
			float currLambda = lambda[i][j];
			for (int k = 0; k < nFeatures; k++) {
				if (features[2][k] < currLambda) {
					features[0][k] = float(j);
					features[1][k] = float(i);
					features[2][k] = currLambda;
				}
			}
		}
	}
}

// Bilinear patch interpolation around each feature (paper getInterpPatch).
void getInterpPatch(int nFeatures) {
	for (int k = 0; k < nFeatures; k++) {
		int fx = int(features[0][k]);
		int fy = int(features[1][k]);
		if (fx < 3) { fx = 3; }
		if (fx > 30) { fx = 30; }
		if (fy < 3) { fy = 3; }
		if (fy > 30) { fy = 30; }
		for (int a = 0; a < 7; a++) {
			for (int b = 0; b < 7; b++) {
				float p00 = blur[fy + a - 3][fx + b - 3];
				float p01 = blur[fy + a - 3][fx + b - 2];
				float p10 = blur[fy + a - 2][fx + b - 3];
				float p11 = blur[fy + a - 2][fx + b - 2];
				patches[k][a * 7 + b] = 0.25 * (p00 + p01 + p10 + p11);
			}
		}
	}
}

int main() {
	int rows = 34;
	int cols = 34;
	int frames = 3;
	float sum = 0.0;
	for (int f = 0; f < frames; f++) {
		loadImage(rows, cols);
		imageBlurX(rows, cols);
		imageBlurY(rows, cols);
		calcSobelDX(rows, cols);
		calcSobelDY(rows, cols);
		calcLambda(rows, cols, 3);
		fillFeatures(rows, cols, 3, 32);
		getInterpPatch(32);
		sum = sum + features[2][0] + patches[0][24];
	}
	print("tracking", sum);
	return 0;
}
`
