// Package bench contains the evaluation workloads: structurally faithful
// Kr re-implementations of the 8 NAS Parallel Benchmarks and the 3
// C-language SPEC OMP2001 programs the paper evaluates (§6), plus the
// SD-VBS feature-tracking example of Figures 2 and 3, together with the
// MANUAL parallelization plans they are compared against.
//
// The programs are scaled down from the paper's W/train inputs so the
// whole suite profiles in seconds under the IR interpreter, but each
// preserves its original's loop-nest shapes and dependence structure —
// which is what Kremlin's analysis and the paper's results are about.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"kremlin"
	"kremlin/internal/hcpa"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
)

// ManualStyle describes how the third-party MANUAL parallelization chose
// its regions.
type ManualStyle int

const (
	// ManualCoarse: the manual version parallelized the profitable outer
	// loops plus every smaller parallel loop in sight (no nesting) — the
	// common, thorough hand-parallelization. Comparable to Kremlin but with
	// many marginal extra regions.
	ManualCoarse ManualStyle = iota
	// ManualInner: the manual version stuck to the obvious inner loops and
	// missed a coarse-grained opportunity — the paper's sp and is cases,
	// where Kremlin's plan wins big.
	ManualInner
)

// Benchmark is one evaluation program.
type Benchmark struct {
	Name   string
	Suite  string // "NPB" or "SPEC"
	Source string
	Style  ManualStyle
	// Input names the nominal input class ("W" for NPB, "train" for SPEC).
	Input string
	// RefSource optionally holds a larger-input variant ("ref"), used by
	// the input-sensitivity experiment. Empty means: same source.
	RefSource string
}

// All returns the full suite in the paper's Figure-6 order.
func All() []*Benchmark {
	return []*Benchmark{
		{Name: "ammp", Suite: "SPEC", Source: srcAmmp, Style: ManualCoarse, Input: "train", RefSource: refAmmp},
		{Name: "art", Suite: "SPEC", Source: srcArt, Style: ManualCoarse, Input: "train", RefSource: refArt},
		{Name: "equake", Suite: "SPEC", Source: srcEquake, Style: ManualCoarse, Input: "train", RefSource: refEquake},
		{Name: "bt", Suite: "NPB", Source: srcBT, Style: ManualCoarse, Input: "W"},
		{Name: "cg", Suite: "NPB", Source: srcCG, Style: ManualCoarse, Input: "W"},
		{Name: "ep", Suite: "NPB", Source: srcEP, Style: ManualCoarse, Input: "W"},
		{Name: "ft", Suite: "NPB", Source: srcFT, Style: ManualCoarse, Input: "W"},
		{Name: "is", Suite: "NPB", Source: srcIS, Style: ManualInner, Input: "W"},
		{Name: "lu", Suite: "NPB", Source: srcLU, Style: ManualCoarse, Input: "W"},
		{Name: "mg", Suite: "NPB", Source: srcMG, Style: ManualCoarse, Input: "W"},
		{Name: "sp", Suite: "NPB", Source: srcSP, Style: ManualInner, Input: "W"},
	}
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Tracking returns the SD-VBS feature-tracking example program (Figures 2
// and 3).
func Tracking() *Benchmark {
	return &Benchmark{Name: "tracking", Suite: "SD-VBS", Source: srcTracking, Style: ManualCoarse, Input: "data"}
}

// Compiled caches the expensive compile+profile pipeline per benchmark.
type Compiled struct {
	Bench   *Benchmark
	Program *kremlin.Program
	Profile *profile.Profile
	Summary *hcpa.Summary
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Compiled{}
)

// Load compiles and profiles b (cached across callers in one process).
func Load(b *Benchmark) (*Compiled, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if c, ok := cache[b.Name]; ok {
		return c, nil
	}
	prog, err := kremlin.Compile(b.Name+".kr", b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		return nil, fmt.Errorf("bench %s: profile: %w", b.Name, err)
	}
	c := &Compiled{Bench: b, Program: prog, Profile: prof, Summary: prog.Summarize(prof)}
	cache[b.Name] = c
	return c, nil
}

// ManualPlan derives the MANUAL region set for a benchmark from its style,
// applying the selection rules described on ManualStyle. Returns region IDs.
func ManualPlan(b *Benchmark, sum *hcpa.Summary) []int {
	// Thresholds model human judgment, not Kremlin's: a thorough manual
	// parallelizer annotates any loop that looks somewhat parallel
	// (ManualCoarse: low bars, so plans carry many marginal regions); an
	// inner-loop-focused one also refuses loops with too few iterations or
	// too little per-instance work to bother with.
	minSP, minCov := 1.5, 0.00002
	if b.Style == ManualInner {
		minSP, minCov = 2.0, 0.0004
	}
	eligible := map[int]*hcpa.RegionStats{}
	for _, st := range sum.Executed {
		if st.Region.Kind != regions.LoopRegion {
			continue
		}
		if st.SelfP < minSP || st.Coverage < minCov {
			continue
		}
		if b.Style == ManualInner {
			if st.AvgIters < 8 || st.Instances == 0 || st.TotalWork/uint64(st.Instances) < 400 {
				continue
			}
		}
		eligible[st.Region.ID] = st
	}

	// hasEligibleDescendant within the same function's loop tree.
	var hasElig func(r *regions.Region) bool
	hasElig = func(r *regions.Region) bool {
		for _, c := range r.Children {
			if _, ok := eligible[c.ID]; ok {
				return true
			}
			if hasElig(c) {
				return true
			}
		}
		return false
	}

	var ids []int
	switch b.Style {
	case ManualInner:
		// Innermost selection: eligible loops with no eligible descendant.
		for id, st := range eligible {
			if !hasElig(st.Region) {
				ids = append(ids, id)
			}
		}
	default:
		// Outer-first greedy without nesting, then keep lone inner loops of
		// unselected nests: walk each function's loop forest top-down.
		var walk func(r *regions.Region)
		walk = func(r *regions.Region) {
			if _, ok := eligible[r.ID]; ok && r.Kind == regions.LoopRegion {
				ids = append(ids, r.ID)
				return // no nested parallel regions
			}
			for _, c := range r.Children {
				walk(c)
			}
		}
		for _, f := range sum.Prog.Module.Funcs {
			walk(sum.Prog.PerFunc[f].Root)
		}
	}
	sort.Ints(ids)
	return ids
}
