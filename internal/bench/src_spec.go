package bench

import "strings"

// srcAmmp is the SPEC ammp kernel: molecular dynamics — per-atom force
// accumulation over a precomputed neighbor list (DOALL over atoms), leapfrog
// integration updates (DOALL), and a per-step energy reduction whose work is
// too small to amortize OpenMP reduction overhead (the paper's example of a
// reduction the planner must reject).
const srcAmmp = `
// SPEC ammp kernel (train scale-down).
float px[200];
float py[200];
float pz[200];
float vx[200];
float vy[200];
float vz[200];
float fx[200];
float fy[200];
float fz[200];
int nbStart[201];
int nbList[3200];
float energy;

void placeAtoms(int n) {
	for (int i = 0; i < n; i++) {
		int t = i * 97 % 125;
		px[i] = float(t % 5);
		py[i] = float((t / 5) % 5);
		pz[i] = float(t / 25);
		vx[i] = 0.0;
		vy[i] = 0.0;
		vz[i] = 0.0;
	}
}

// Static neighbor list: 16 pseudo-random neighbors per atom.
void buildNeighbors(int n) {
	for (int i = 0; i < n; i++) {
		nbStart[i] = i * 16;
		for (int k = 0; k < 16; k++) {
			int j = (i * 31 + k * 67 + 5) % n;
			if (j == i) { j = (j + 1) % n; }
			nbList[i * 16 + k] = j;
		}
	}
	nbStart[n] = n * 16;
}

// Lennard-Jones-ish forces: DOALL over atoms (each writes only its own f).
void forces(int n) {
	for (int i = 0; i < n; i++) {
		float ax = 0.0;
		float ay = 0.0;
		float az = 0.0;
		for (int k = nbStart[i]; k < nbStart[i+1]; k++) {
			int j = nbList[k];
			float dx = px[i] - px[j];
			float dy = py[i] - py[j];
			float dz = pz[i] - pz[j];
			float r2 = dx*dx + dy*dy + dz*dz + 0.1;
			float inv = 1.0 / r2;
			float s = (inv * inv * inv - 0.5 * inv) * inv;
			ax = ax + s * dx;
			ay = ay + s * dy;
			az = az + s * dz;
		}
		fx[i] = ax;
		fy[i] = ay;
		fz[i] = az;
	}
}

// Integrate: DOALL over atoms.
void integrate(int n, float dt) {
	for (int i = 0; i < n; i++) {
		vx[i] = vx[i] + dt * fx[i];
		vy[i] = vy[i] + dt * fy[i];
		vz[i] = vz[i] + dt * fz[i];
		px[i] = px[i] + dt * vx[i];
		py[i] = py[i] + dt * vy[i];
		pz[i] = pz[i] + dt * vz[i];
	}
}

// Tiny per-step energy reduction: not worth parallelizing (OpenMP
// reduction overhead dominates).
void accumEnergy(int n) {
	for (int i = 0; i < n; i++) {
		energy = energy + vx[i] * vx[i];
	}
}

int main() {
	int n = 200;
	int steps = 8;
	placeAtoms(n);
	buildNeighbors(n);
	for (int s = 0; s < steps; s++) {
		forces(n);
		integrate(n, 0.001);
		accumEnergy(n);
	}
	print("ammp", energy);
	return 0;
}
`

// srcArt is the SPEC art kernel: an ART neural network scanning an image —
// per-neuron activation (DOALL over neurons with an inner dot-product
// reduction), winner-take-all search, weight update for the winner, and a
// coarse scan loop over image windows.
const srcArt = `
// SPEC art kernel (train scale-down).
float w[64][100];
float input[100];
float act[64];
float image[40][40];
int winners[36];
float matchSum;

void initWeights() {
	for (int j = 0; j < 64; j++) {
		for (int i = 0; i < 100; i++) {
			w[j][i] = float((j * 17 + i * 3) % 13) / 13.0;
		}
	}
}

void initImage() {
	for (int y = 0; y < 40; y++) {
		for (int x = 0; x < 40; x++) {
			image[y][x] = float((x * y + 3 * x + y) % 29) / 29.0;
		}
	}
}

// Extract a 10x10 window into the input vector.
void loadWindow(int wy, int wx) {
	for (int y = 0; y < 10; y++) {
		for (int x = 0; x < 10; x++) {
			input[y * 10 + x] = image[wy + y][wx + x];
		}
	}
}

// Per-neuron activation: DOALL over neurons.
void computeActivations() {
	for (int j = 0; j < 64; j++) {
		float s = 0.0;
		for (int i = 0; i < 100; i++) {
			s = s + w[j][i] * input[i];
		}
		act[j] = s;
	}
}

// Winner-take-all: small serial max scan.
int findWinner() {
	int best = 0;
	float bestVal = act[0];
	for (int j = 1; j < 64; j++) {
		if (act[j] > bestVal) {
			bestVal = act[j];
			best = j;
		}
	}
	return best;
}

// Update the winner's weights toward the input.
void updateWinner(int j) {
	for (int i = 0; i < 100; i++) {
		w[j][i] = w[j][i] + 0.05 * (input[i] - w[j][i]);
	}
}

// Scan all windows: the coarse outer match loop.
void scanImage() {
	for (int wy = 0; wy < 6; wy++) {
		for (int wx = 0; wx < 6; wx++) {
			loadWindow(wy * 5, wx * 5);
			computeActivations();
			int win = findWinner();
			winners[wy * 6 + wx] = win;
			matchSum = matchSum + act[win];
			updateWinner(win);
		}
	}
}

int main() {
	int epochs = 3;
	initWeights();
	initImage();
	for (int e = 0; e < epochs; e++) {
		scanImage();
	}
	print("art", matchSum, winners[0], winners[35]);
	return 0;
}
`

// srcEquake is the SPEC equake kernel: seismic wave propagation — a sparse
// matrix-vector product over the stiffness matrix (DOALL over rows) inside
// a serial time-integration loop, plus per-node displacement/velocity
// updates (DOALL).
const srcEquake = `
// SPEC equake kernel (train scale-down).
float kval[4800];
int kcol[4800];
int krow[601];
float disp[600];
float dispt[600];
float vel[600];
float mass[600];
float src[600];
float sumNorm;

void buildMatrix(int n, int nz) {
	for (int i = 0; i < n; i++) {
		krow[i] = i * nz;
		for (int k = 0; k < nz; k++) {
			int j = (i * 53 + k * 179 + 11) % n;
			kcol[i * nz + k] = j;
			kval[i * nz + k] = 0.01 + float((i + k) % 7) * 0.003;
		}
		kcol[i * nz] = i;
		kval[i * nz] = 1.5;
		mass[i] = 1.0 + float(i % 5) * 0.1;
	}
	krow[n] = n * nz;
}

void initState(int n) {
	for (int i = 0; i < n; i++) {
		disp[i] = 0.0;
		vel[i] = 0.0;
		src[i] = 0.0;
	}
	src[n / 2] = 1.0;
}

// Sparse matvec: dispt = K * disp. DOALL over rows.
void smvp(int n) {
	for (int i = 0; i < n; i++) {
		float s = 0.0;
		for (int k = krow[i]; k < krow[i+1]; k++) {
			s = s + kval[k] * disp[kcol[k]];
		}
		dispt[i] = s;
	}
}

// Node update: DOALL over nodes.
void advance(int n, float dt, float excite) {
	for (int i = 0; i < n; i++) {
		float acc = (excite * src[i] - dispt[i]) / mass[i];
		vel[i] = 0.99 * (vel[i] + dt * acc);
		disp[i] = disp[i] + dt * vel[i];
	}
}

void accumNorm(int n) {
	for (int i = 0; i < n; i++) {
		sumNorm = sumNorm + disp[i] * disp[i];
	}
}

int main() {
	int n = 600;
	int nz = 8;
	int steps = 8;
	buildMatrix(n, nz);
	initState(n);
	for (int t = 0; t < steps; t++) {
		float excite = sin(0.3 * float(t));
		smvp(n);
		advance(n, 0.01, excite);
		accumNorm(n);
	}
	print("equake", sqrt(sumNorm));
	return 0;
}
`

// Ref-input variants for the input-sensitivity experiment (§6.1): same
// code, more time steps — SPEC's train→ref change scaled the workload, not
// the program structure.
var (
	refAmmp   = strings.Replace(srcAmmp, "int steps = 8;", "int steps = 24;", 1)
	refArt    = strings.Replace(srcArt, "int epochs = 3;", "int epochs = 18;", 1)
	refEquake = strings.Replace(srcEquake, "int steps = 8;", "int steps = 28;", 1)
)
