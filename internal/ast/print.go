package ast

import (
	"fmt"
	"strconv"
	"strings"

	"kremlin/internal/token"
)

// Print renders the AST back to Kr source. The output is canonical
// (normalized whitespace, explicit parentheses only where precedence
// requires them) and re-parses to a structurally identical tree — the
// fixpoint property the printer tests assert. kremlin-cc -dump-ast uses
// it, and it doubles as documentation of the grammar.
func Print(f *File) string {
	var p printer
	for _, g := range f.Globals {
		p.varDecl(g, 0)
	}
	if len(f.Globals) > 0 {
		p.sb.WriteByte('\n')
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.sb.WriteByte('\n')
		}
		p.funcDecl(fn)
	}
	return p.sb.String()
}

type printer struct {
	sb strings.Builder
}

func (p *printer) indent(n int) {
	for i := 0; i < n; i++ {
		p.sb.WriteByte('\t')
	}
}

func (p *printer) varDecl(d *VarDecl, depth int) {
	p.indent(depth)
	p.sb.WriteString(d.Elem.String())
	p.sb.WriteByte(' ')
	p.sb.WriteString(d.Name)
	for _, dim := range d.Dims {
		p.sb.WriteByte('[')
		p.expr(dim, 0)
		p.sb.WriteByte(']')
	}
	if d.Init != nil {
		p.sb.WriteString(" = ")
		p.expr(d.Init, 0)
	}
	p.sb.WriteString(";\n")
}

func (p *printer) funcDecl(fn *FuncDecl) {
	p.sb.WriteString(fn.Ret.String())
	p.sb.WriteByte(' ')
	p.sb.WriteString(fn.Name)
	p.sb.WriteByte('(')
	for i, param := range fn.Params {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		p.sb.WriteString(param.Elem.String())
		p.sb.WriteByte(' ')
		p.sb.WriteString(param.Name)
		for d := 0; d < param.NumDims; d++ {
			p.sb.WriteString("[]")
		}
	}
	p.sb.WriteString(") ")
	p.block(fn.Body, 0)
	p.sb.WriteByte('\n')
}

func (p *printer) block(b *Block, depth int) {
	p.sb.WriteString("{\n")
	for _, s := range b.Stmts {
		p.stmt(s, depth+1)
	}
	p.indent(depth)
	p.sb.WriteByte('}')
}

func (p *printer) stmt(s Stmt, depth int) {
	switch s := s.(type) {
	case *Block:
		p.indent(depth)
		p.block(s, depth)
		p.sb.WriteByte('\n')
	case *DeclStmt:
		p.varDecl(s.Decl, depth)
	case *AssignStmt:
		p.indent(depth)
		p.simpleStmt(s)
		p.sb.WriteString(";\n")
	case *IncDecStmt:
		p.indent(depth)
		p.expr(s.LHS, 0)
		p.sb.WriteString(s.Op.String())
		p.sb.WriteString(";\n")
	case *IfStmt:
		p.indent(depth)
		p.ifStmt(s, depth)
		p.sb.WriteByte('\n')
	case *ForStmt:
		p.indent(depth)
		p.sb.WriteString("for (")
		if s.Init != nil {
			p.forInit(s.Init)
		}
		p.sb.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond, 0)
		}
		p.sb.WriteString("; ")
		if s.Post != nil {
			p.forPost(s.Post)
		}
		p.sb.WriteString(") ")
		p.block(s.Body, depth)
		p.sb.WriteByte('\n')
	case *WhileStmt:
		p.indent(depth)
		p.sb.WriteString("while (")
		p.expr(s.Cond, 0)
		p.sb.WriteString(") ")
		p.block(s.Body, depth)
		p.sb.WriteByte('\n')
	case *BreakStmt:
		p.indent(depth)
		p.sb.WriteString("break;\n")
	case *ContinueStmt:
		p.indent(depth)
		p.sb.WriteString("continue;\n")
	case *ReturnStmt:
		p.indent(depth)
		p.sb.WriteString("return")
		if s.Result != nil {
			p.sb.WriteByte(' ')
			p.expr(s.Result, 0)
		}
		p.sb.WriteString(";\n")
	case *ExprStmt:
		p.indent(depth)
		p.expr(s.X, 0)
		p.sb.WriteString(";\n")
	default:
		panic(fmt.Sprintf("ast: unknown statement %T", s))
	}
}

func (p *printer) ifStmt(s *IfStmt, depth int) {
	p.sb.WriteString("if (")
	p.expr(s.Cond, 0)
	p.sb.WriteString(") ")
	p.block(s.Then, depth)
	switch e := s.Else.(type) {
	case nil:
	case *IfStmt:
		p.sb.WriteString(" else ")
		p.ifStmt(e, depth)
	case *Block:
		p.sb.WriteString(" else ")
		p.block(e, depth)
	}
}

// forInit prints a declaration or simple statement without the trailing
// semicolon/newline (for-header position).
func (p *printer) forInit(s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		d := s.Decl
		p.sb.WriteString(d.Elem.String())
		p.sb.WriteByte(' ')
		p.sb.WriteString(d.Name)
		if d.Init != nil {
			p.sb.WriteString(" = ")
			p.expr(d.Init, 0)
		}
	default:
		p.forPost(s)
	}
}

func (p *printer) forPost(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		p.simpleStmt(s)
	case *IncDecStmt:
		p.expr(s.LHS, 0)
		p.sb.WriteString(s.Op.String())
	case *ExprStmt:
		p.expr(s.X, 0)
	default:
		panic(fmt.Sprintf("ast: bad for-header statement %T", s))
	}
}

func (p *printer) simpleStmt(s *AssignStmt) {
	p.expr(s.LHS, 0)
	p.sb.WriteByte(' ')
	p.sb.WriteString(s.Op.String())
	p.sb.WriteByte(' ')
	p.expr(s.RHS, 0)
}

// expr prints e, parenthesizing when its top-level operator binds looser
// than the context precedence.
func (p *printer) expr(e Expr, prec int) {
	switch e := e.(type) {
	case *IntLit:
		p.sb.WriteString(strconv.FormatInt(e.Value, 10))
	case *FloatLit:
		s := strconv.FormatFloat(e.Value, 'g', -1, 64)
		// Keep float literals lexically float (the parser types "1" as int).
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.sb.WriteString(s)
	case *BoolLit:
		if e.Value {
			p.sb.WriteString("true")
		} else {
			p.sb.WriteString("false")
		}
	case *StringLit:
		p.sb.WriteString(strconv.Quote(e.Value))
	case *Ident:
		p.sb.WriteString(e.Name)
	case *IndexExpr:
		p.expr(e.X, token.LAND.Precedence()+10) // primary position
		p.sb.WriteByte('[')
		p.expr(e.Index, 0)
		p.sb.WriteByte(']')
	case *CallExpr:
		p.sb.WriteString(e.Name)
		p.sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.sb.WriteByte(')')
	case *BinaryExpr:
		myPrec := e.Op.Precedence()
		if myPrec < prec {
			p.sb.WriteByte('(')
		}
		p.expr(e.X, myPrec)
		p.sb.WriteByte(' ')
		p.sb.WriteString(e.Op.String())
		p.sb.WriteByte(' ')
		// Right operand needs one level tighter: operators are
		// left-associative.
		p.expr(e.Y, myPrec+1)
		if myPrec < prec {
			p.sb.WriteByte(')')
		}
	case *UnaryExpr:
		p.sb.WriteString(e.Op.String())
		if _, nested := e.X.(*UnaryExpr); nested {
			// "--x" would lex as a decrement; force parentheses.
			p.sb.WriteByte('(')
			p.expr(e.X, 0)
			p.sb.WriteByte(')')
		} else {
			p.expr(e.X, 100) // unary binds tightest
		}
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", e))
	}
}
