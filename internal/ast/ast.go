// Package ast defines the abstract syntax tree of the Kr language.
package ast

import "kremlin/internal/token"

// Node is implemented by every AST node and reports its source extent.
type Node interface {
	Pos() int // byte offset of the first character
	End() int // byte offset just past the node
}

// BasicKind is a scalar element type.
type BasicKind int

// The scalar kinds of Kr.
const (
	Invalid BasicKind = iota
	Int
	Float
	Bool
	Void
)

func (k BasicKind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Void:
		return "void"
	}
	return "invalid"
}

// File is a parsed Kr compilation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a scalar or array variable, global or local.
// Arrays carry one extent expression per dimension.
type VarDecl struct {
	NamePos int
	Name    string
	Elem    BasicKind
	Dims    []Expr // nil for scalars
	Init    Expr   // optional initializer (scalars only)
	EndOff  int
}

func (d *VarDecl) Pos() int { return d.NamePos }
func (d *VarDecl) End() int { return d.EndOff }

// ParamDecl declares a function parameter. NumDims > 0 means an array
// reference parameter (extents are carried at run time).
type ParamDecl struct {
	NamePos int
	Name    string
	Elem    BasicKind
	NumDims int
}

func (d *ParamDecl) Pos() int { return d.NamePos }
func (d *ParamDecl) End() int { return d.NamePos + len(d.Name) }

// FuncDecl declares a function.
type FuncDecl struct {
	NamePos int
	Name    string
	Ret     BasicKind
	Params  []*ParamDecl
	Body    *Block
}

func (d *FuncDecl) Pos() int { return d.NamePos }
func (d *FuncDecl) End() int { return d.Body.End() }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a brace-delimited statement list.
type Block struct {
	LbracePos int
	Stmts     []Stmt
	RbracePos int
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct{ Decl *VarDecl }

// AssignStmt assigns RHS to LHS with operator Op (one of =, +=, -=, *=, /=).
type AssignStmt struct {
	LHS Expr
	Op  token.Kind
	RHS Expr
}

// IncDecStmt is lhs++ or lhs--.
type IncDecStmt struct {
	LHS Expr
	Op  token.Kind // INC or DEC
}

// IfStmt is an if statement with optional else branch.
type IfStmt struct {
	IfPos int
	Cond  Expr
	Then  *Block
	Else  Stmt // *Block, *IfStmt, or nil
}

// ForStmt is a C-style for loop. Init/Post may be nil; Cond may be nil
// (infinite loop).
type ForStmt struct {
	ForPos int
	Init   Stmt // *AssignStmt, *DeclStmt, *IncDecStmt, or nil
	Cond   Expr
	Post   Stmt
	Body   *Block
}

// WhileStmt is a while loop.
type WhileStmt struct {
	WhilePos int
	Cond     Expr
	Body     *Block
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ KwPos int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ KwPos int }

// ReturnStmt returns from the enclosing function, with optional result.
type ReturnStmt struct {
	KwPos  int
	Result Expr
	EndOff int
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct{ X Expr }

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IncDecStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ReturnStmt) stmt()   {}
func (*ExprStmt) stmt()     {}

func (b *Block) Pos() int      { return b.LbracePos }
func (b *Block) End() int      { return b.RbracePos + 1 }
func (s *DeclStmt) Pos() int   { return s.Decl.Pos() }
func (s *DeclStmt) End() int   { return s.Decl.End() }
func (s *AssignStmt) Pos() int { return s.LHS.Pos() }
func (s *AssignStmt) End() int { return s.RHS.End() }
func (s *IncDecStmt) Pos() int { return s.LHS.Pos() }
func (s *IncDecStmt) End() int { return s.LHS.End() + 2 }
func (s *IfStmt) Pos() int     { return s.IfPos }
func (s *IfStmt) End() int {
	if s.Else != nil {
		return s.Else.End()
	}
	return s.Then.End()
}
func (s *ForStmt) Pos() int      { return s.ForPos }
func (s *ForStmt) End() int      { return s.Body.End() }
func (s *WhileStmt) Pos() int    { return s.WhilePos }
func (s *WhileStmt) End() int    { return s.Body.End() }
func (s *BreakStmt) Pos() int    { return s.KwPos }
func (s *BreakStmt) End() int    { return s.KwPos + len("break") }
func (s *ContinueStmt) Pos() int { return s.KwPos }
func (s *ContinueStmt) End() int { return s.KwPos + len("continue") }
func (s *ReturnStmt) Pos() int   { return s.KwPos }
func (s *ReturnStmt) End() int   { return s.EndOff }
func (s *ExprStmt) Pos() int     { return s.X.Pos() }
func (s *ExprStmt) End() int     { return s.X.End() }

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos int
	Value  int64
	Text   string
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos int
	Value  float64
	Text   string
}

// BoolLit is true or false.
type BoolLit struct {
	LitPos int
	Value  bool
}

// StringLit is a string literal (only legal as a print argument).
type StringLit struct {
	LitPos int
	Value  string
	EndOff int
}

// Ident is a use of a named variable.
type Ident struct {
	NamePos int
	Name    string
}

// IndexExpr is X[Index]; multi-dimensional accesses nest.
type IndexExpr struct {
	X      Expr
	Index  Expr
	EndOff int
}

// CallExpr calls a function or builtin by name.
type CallExpr struct {
	NamePos int
	Name    string
	Args    []Expr
	EndOff  int
}

// BinaryExpr is X Op Y.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

// UnaryExpr is Op X (unary minus or logical not).
type UnaryExpr struct {
	OpPos int
	Op    token.Kind
	X     Expr
}

func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*BoolLit) expr()    {}
func (*StringLit) expr()  {}
func (*Ident) expr()      {}
func (*IndexExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}

func (e *IntLit) Pos() int   { return e.LitPos }
func (e *IntLit) End() int   { return e.LitPos + len(e.Text) }
func (e *FloatLit) Pos() int { return e.LitPos }
func (e *FloatLit) End() int { return e.LitPos + len(e.Text) }
func (e *BoolLit) Pos() int  { return e.LitPos }
func (e *BoolLit) End() int {
	if e.Value {
		return e.LitPos + 4
	}
	return e.LitPos + 5
}
func (e *StringLit) Pos() int  { return e.LitPos }
func (e *StringLit) End() int  { return e.EndOff }
func (e *Ident) Pos() int      { return e.NamePos }
func (e *Ident) End() int      { return e.NamePos + len(e.Name) }
func (e *IndexExpr) Pos() int  { return e.X.Pos() }
func (e *IndexExpr) End() int  { return e.EndOff }
func (e *CallExpr) Pos() int   { return e.NamePos }
func (e *CallExpr) End() int   { return e.EndOff }
func (e *BinaryExpr) Pos() int { return e.X.Pos() }
func (e *BinaryExpr) End() int { return e.Y.End() }
func (e *UnaryExpr) Pos() int  { return e.OpPos }
func (e *UnaryExpr) End() int  { return e.X.End() }
