package ast

import (
	"testing"

	"kremlin/internal/token"
)

func TestBasicKindString(t *testing.T) {
	cases := map[BasicKind]string{
		Int: "int", Float: "float", Bool: "bool", Void: "void", Invalid: "invalid",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d renders %q, want %q", k, k.String(), want)
		}
	}
}

func TestNodeExtents(t *testing.T) {
	id := &Ident{NamePos: 10, Name: "abc"}
	if id.Pos() != 10 || id.End() != 13 {
		t.Errorf("ident extent %d-%d", id.Pos(), id.End())
	}
	lit := &IntLit{LitPos: 5, Value: 42, Text: "42"}
	if lit.End() != 7 {
		t.Errorf("int lit end %d", lit.End())
	}
	bt := &BoolLit{LitPos: 0, Value: true}
	bf := &BoolLit{LitPos: 0, Value: false}
	if bt.End() != 4 || bf.End() != 5 {
		t.Errorf("bool extents %d,%d", bt.End(), bf.End())
	}
	bin := &BinaryExpr{Op: token.ADD, X: lit, Y: id}
	if bin.Pos() != lit.Pos() || bin.End() != id.End() {
		t.Errorf("binary extent %d-%d", bin.Pos(), bin.End())
	}
	un := &UnaryExpr{OpPos: 2, Op: token.SUB, X: lit}
	if un.Pos() != 2 || un.End() != lit.End() {
		t.Errorf("unary extent %d-%d", un.Pos(), un.End())
	}
	idx := &IndexExpr{X: id, Index: lit, EndOff: 20}
	if idx.Pos() != id.Pos() || idx.End() != 20 {
		t.Errorf("index extent %d-%d", idx.Pos(), idx.End())
	}
	call := &CallExpr{NamePos: 1, Name: "f", EndOff: 9}
	if call.Pos() != 1 || call.End() != 9 {
		t.Errorf("call extent %d-%d", call.Pos(), call.End())
	}
}

func TestStmtExtents(t *testing.T) {
	blk := &Block{LbracePos: 3, RbracePos: 9}
	if blk.Pos() != 3 || blk.End() != 10 {
		t.Errorf("block extent %d-%d", blk.Pos(), blk.End())
	}
	iff := &IfStmt{IfPos: 0, Then: blk}
	if iff.End() != blk.End() {
		t.Errorf("if without else ends at %d", iff.End())
	}
	els := &Block{LbracePos: 12, RbracePos: 20}
	iff.Else = els
	if iff.End() != els.End() {
		t.Errorf("if with else ends at %d", iff.End())
	}
	ret := &ReturnStmt{KwPos: 4, EndOff: 14}
	if ret.Pos() != 4 || ret.End() != 14 {
		t.Errorf("return extent %d-%d", ret.Pos(), ret.End())
	}
	brk := &BreakStmt{KwPos: 7}
	if brk.End()-brk.Pos() != len("break") {
		t.Errorf("break extent %d-%d", brk.Pos(), brk.End())
	}
	cont := &ContinueStmt{KwPos: 7}
	if cont.End()-cont.Pos() != len("continue") {
		t.Errorf("continue extent %d-%d", cont.Pos(), cont.End())
	}
}

// TestAllStmtsImplementInterface is a compile-time exhaustiveness check
// plus a runtime sanity pass over the node kinds.
func TestAllStmtsImplementInterface(t *testing.T) {
	stmts := []Stmt{
		&Block{}, &DeclStmt{Decl: &VarDecl{}}, &AssignStmt{LHS: &Ident{}, RHS: &Ident{}},
		&IncDecStmt{LHS: &Ident{}}, &IfStmt{Then: &Block{}},
		&ForStmt{Body: &Block{}}, &WhileStmt{Body: &Block{}},
		&BreakStmt{}, &ContinueStmt{}, &ReturnStmt{}, &ExprStmt{X: &Ident{}},
	}
	for _, s := range stmts {
		_ = s.Pos()
		_ = s.End()
	}
	exprs := []Expr{
		&IntLit{Text: "0"}, &FloatLit{Text: "0.0"}, &BoolLit{}, &StringLit{},
		&Ident{Name: "x"}, &IndexExpr{X: &Ident{}, Index: &IntLit{Text: "0"}},
		&CallExpr{Name: "f"}, &BinaryExpr{X: &Ident{}, Y: &Ident{}},
		&UnaryExpr{X: &Ident{}},
	}
	for _, e := range exprs {
		_ = e.Pos()
		_ = e.End()
	}
}
