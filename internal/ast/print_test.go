package ast_test

import (
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/krgen"
	"kremlin/internal/parser"
	"kremlin/internal/source"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	errs := &source.ErrorList{}
	f := parser.Parse(source.NewFile("t.kr", src), errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v\nsource:\n%s", errs.Err(), src)
	}
	return f
}

// TestPrintFixpoint: printing is a fixpoint under reparsing —
// print(parse(print(parse(src)))) == print(parse(src)).
func TestPrintFixpoint(t *testing.T) {
	src := `
int n = 8;
float grid[8][8];

float cell(int i, int j) {
	if (i < 0 || j < 0) {
		return -1.0;
	} else if (i == j) {
		return 0.0;
	}
	return grid[i][j] * 2.0 + 1.0;
}

void scan() {
	int count = 0;
	for (int i = 0; i < n; i++) {
		int j = n - 1;
		while (j > i) {
			if (grid[i][j] > cell(i, j)) {
				count++;
				continue;
			}
			j--;
			if (count > 10) { break; }
		}
	}
	grid[0][0] += float(count);
	print("count", count, true);
}

int main() {
	scan();
	return int(grid[0][0]) % 100;
}
`
	once := ast.Print(parse(t, src))
	twice := ast.Print(parse(t, once))
	if once != twice {
		t.Errorf("printer not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

// TestPrintPrecedence: explicit parentheses survive exactly where needed.
func TestPrintPrecedence(t *testing.T) {
	cases := []struct{ in, want string }{
		{"int x = (1 + 2) * 3;", "(1 + 2) * 3"},
		{"int x = 1 + 2 * 3;", "1 + 2 * 3"},
		{"int x = 1 - (2 - 3);", "1 - (2 - 3)"},
		{"int x = (1 - 2) - 3;", "1 - 2 - 3"},
		// Comparisons bind tighter than ==, so those parens are redundant
		// and the canonical form drops them.
		{"bool b = (1 < 2) == (3 < 4);", "bool b = 1 < 2 == 3 < 4;"},
		{"int x = -(1 + 2);", "-(1 + 2)"},
		{"int x = - -3;", "-(-3)"},
	}
	for _, c := range cases {
		f := parse(t, "int main() { "+c.in+" return 0; }")
		out := ast.Print(f)
		if !contains(out, c.want) {
			t.Errorf("print of %q missing %q:\n%s", c.in, c.want, out)
		}
		// And the output reparses to the same canonical form.
		if again := ast.Print(parse(t, out)); again != out {
			t.Errorf("not a fixpoint for %q", c.in)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPrintFixpointOnGeneratedPrograms: the fixpoint property holds for
// every random program the generator can produce.
func TestPrintFixpointOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		src := krgen.Generate(seed, krgen.Default())
		once := ast.Print(parse(t, src))
		twice := ast.Print(parse(t, once))
		if once != twice {
			t.Fatalf("seed %d: printer not a fixpoint", seed)
		}
	}
}
