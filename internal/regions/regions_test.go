package regions

import (
	"testing"

	"kremlin/internal/analysis"
	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/parser"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

func analyze(t *testing.T, src string) *Program {
	t.Helper()
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", src)
	tree := parser.Parse(file, errs)
	info := types.Check(tree, file, errs)
	if errs.HasErrors() {
		t.Fatalf("frontend: %v", errs.Err())
	}
	mod := irbuild.Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("build: %v", errs.Err())
	}
	analysis.Run(mod)
	return Analyze(mod, file)
}

const nestedSrc = `
int work(int x) {
	int s = 0;
	for (int i = 0; i < x; i++) {       // outer loop
		for (int j = 0; j < i; j++) {   // inner loop
			s += j;
		}
	}
	return s;
}
int main() {
	int t = 0;
	for (int k = 0; k < 3; k++) {
		t += work(k);
	}
	return t;
}
`

func TestRegionTreeShape(t *testing.T) {
	p := analyze(t, nestedSrc)
	var funcs, loops, bodies int
	for _, r := range p.Regions {
		switch r.Kind {
		case FuncRegion:
			funcs++
		case LoopRegion:
			loops++
		case BodyRegion:
			bodies++
		}
	}
	if funcs != 2 || loops != 3 || bodies != 3 {
		t.Errorf("funcs=%d loops=%d bodies=%d, want 2/3/3", funcs, loops, bodies)
	}
	// Every loop has exactly one body child; every body's parent is a loop.
	for _, r := range p.Regions {
		switch r.Kind {
		case LoopRegion:
			if len(r.Children) != 1 || r.Children[0].Kind != BodyRegion {
				t.Errorf("loop %s children: %v", r.Name, r.Children)
			}
		case BodyRegion:
			if r.Parent == nil || r.Parent.Kind != LoopRegion {
				t.Errorf("body %s parent: %v", r.Name, r.Parent)
			}
		}
	}
}

func TestRegionIDsAreDense(t *testing.T) {
	p := analyze(t, nestedSrc)
	for i, r := range p.Regions {
		if r.ID != i {
			t.Errorf("region %d has ID %d", i, r.ID)
		}
	}
}

func TestNestPaths(t *testing.T) {
	p := analyze(t, nestedSrc)
	work := p.Module.ByName["work"]
	fi := p.PerFunc[work]
	for _, b := range work.Blocks {
		path := fi.NestPath[b]
		if len(path) == 0 || path[0] != fi.Root {
			t.Fatalf("path for %s does not start at the function region", b)
		}
		// Path alternates correctly: func, then (loop, body)*.
		for i := 1; i < len(path); i++ {
			want := LoopRegion
			if i%2 == 0 {
				want = BodyRegion
			}
			if path[i].Kind != want {
				t.Errorf("path[%d] for %s is %v, want %v", i, b, path[i].Kind, want)
			}
			if path[i].Parent != path[i-1] {
				t.Errorf("path[%d] parent mismatch", i)
			}
		}
	}
	// Depth 2 nest exists: some block has path length 5 (func,loop,body,loop,body).
	max := 0
	for _, b := range work.Blocks {
		if l := len(fi.NestPath[b]); l > max {
			max = l
		}
	}
	if max != 5 {
		t.Errorf("max nest path = %d, want 5", max)
	}
}

func TestCallEdges(t *testing.T) {
	p := analyze(t, nestedSrc)
	work := p.Module.ByName["work"]
	// The call to work() is inside main's k-loop body: that body region
	// must list work as a callee.
	found := false
	for _, r := range p.Regions {
		for _, callee := range r.Callees {
			if callee == work {
				found = true
				if r.Kind != BodyRegion || r.Func.Name != "main" {
					t.Errorf("call edge attached to %v, want main's loop body", r)
				}
			}
		}
	}
	if !found {
		t.Error("missing call edge to work")
	}
}

func TestEdgeEvents(t *testing.T) {
	p := analyze(t, nestedSrc)
	work := p.Module.ByName["work"]
	fi := p.PerFunc[work]

	var header *ir.Block
	for b, lr := range fi.HeaderOf {
		// outer loop header: its loop region's parent is the func region
		if lr.Parent == fi.Root {
			header = b
		}
	}
	if header == nil {
		t.Fatal("no outer loop header found")
	}

	// Entry edge (preheader -> header): enters loop then body.
	var pre *ir.Block
	lr := fi.HeaderOf[header]
	l := fi.LoopOf[lr]
	for _, pblk := range header.Preds {
		if !l.Contains(pblk) {
			pre = pblk
		}
	}
	if pre == nil {
		t.Fatal("no preheader")
	}
	ev := fi.Edge(pre, header)
	if len(ev.Enter) != 2 || ev.Enter[0].Kind != LoopRegion || ev.Enter[1].Kind != BodyRegion {
		t.Errorf("entry edge events = %+v", ev)
	}
	if ev.Iterate != nil || len(ev.Exit) != 0 {
		t.Errorf("entry edge should not iterate/exit: %+v", ev)
	}

	// Back edge (latch -> header): iterates the body.
	var latch *ir.Block
	for _, pblk := range header.Preds {
		if l.Contains(pblk) {
			latch = pblk
		}
	}
	ev = fi.Edge(latch, header)
	if ev.Iterate == nil || ev.Iterate.Kind != BodyRegion {
		t.Errorf("back edge events = %+v", ev)
	}

	// Exit edge (header -> exit): leaves body then loop.
	var exit *ir.Block
	for _, s := range header.Succs {
		if !l.Contains(s) {
			exit = s
		}
	}
	ev = fi.Edge(header, exit)
	if len(ev.Exit) != 2 || ev.Exit[0].Kind != BodyRegion || ev.Exit[1].Kind != LoopRegion {
		t.Errorf("exit edge events = %+v", ev)
	}
}

func TestLabelsStableAndUnique(t *testing.T) {
	p := analyze(t, nestedSrc)
	seen := map[string]bool{}
	for _, r := range p.Regions {
		if r.Kind == BodyRegion {
			continue // bodies share lines with their loops
		}
		l := r.Label()
		if seen[l] {
			t.Errorf("duplicate label %q", l)
		}
		seen[l] = true
		if p.ByLabel(l) == nil {
			t.Errorf("ByLabel(%q) = nil", l)
		}
	}
	if p.ByLabel("no such region") != nil {
		t.Error("ByLabel of garbage should be nil")
	}
}

func TestLoopLineExtents(t *testing.T) {
	p := analyze(t, nestedSrc)
	for _, r := range p.Regions {
		if r.Kind != LoopRegion {
			continue
		}
		if r.StartLine <= 0 || r.EndLine < r.StartLine {
			t.Errorf("loop %s lines %d-%d", r.Name, r.StartLine, r.EndLine)
		}
	}
	// The outer loop in work spans the inner one.
	work := p.Module.ByName["work"]
	fi := p.PerFunc[work]
	var outer, inner *Region
	for _, lr := range fi.HeaderOf {
		if lr.Parent == fi.Root {
			outer = lr
		} else {
			inner = lr
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("loops not found")
	}
	if outer.StartLine > inner.StartLine || outer.EndLine < inner.EndLine {
		t.Errorf("outer %d-%d should span inner %d-%d",
			outer.StartLine, outer.EndLine, inner.StartLine, inner.EndLine)
	}
}
