// Package regions extracts the static region structure of a compiled Kr
// program. Following the paper, a region is a code range whose parallelism
// is measured from entry to exit; Kremlin places regions around functions
// and loops (plus one body region per loop, whose dynamic instances are the
// loop's iterations — the children that make a DOALL loop's
// self-parallelism equal its iteration count).
package regions

import (
	"fmt"
	"sort"

	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/source"
)

// Kind classifies a region.
type Kind int

// The region kinds.
const (
	FuncRegion Kind = iota
	LoopRegion
	BodyRegion // one dynamic instance per loop iteration
)

func (k Kind) String() string {
	switch k {
	case FuncRegion:
		return "func"
	case LoopRegion:
		return "loop"
	case BodyRegion:
		return "body"
	}
	return "?"
}

// Safety is the static loop-dependence verdict attached to a region by
// internal/depcheck: whether parallelizing the region is provably safe
// (no loop-carried flow dependence), provably unsafe, or undecided.
type Safety uint8

// The safety verdicts. The zero value is SafetyUnproven so regions the
// analyzer never looks at (function regions, loops in unanalyzed modules)
// default to "unproven".
const (
	SafetyUnproven Safety = iota // analysis could not decide
	SafetyProven                 // provably free of loop-carried flow dependences
	SafetyRefuted                // a definite loop-carried dependence exists
)

func (s Safety) String() string {
	switch s {
	case SafetyProven:
		return "proven"
	case SafetyRefuted:
		return "refuted"
	}
	return "unproven"
}

// Region is a node of the static region tree.
type Region struct {
	ID       int
	Kind     Kind
	Func     *ir.Func
	Parent   *Region
	Children []*Region
	// Callees are the functions invoked from directly within this region
	// (not within a child region); their function regions are additional
	// children in the region graph.
	Callees            []*ir.Func
	Name               string
	File               string
	StartLine, EndLine int
	// Safety is the depcheck verdict for loop regions (SafetyUnproven until
	// the analyzer runs; always SafetyUnproven for func/body regions).
	Safety Safety
}

func (r *Region) String() string {
	return fmt.Sprintf("%s %s (%s:%d-%d)", r.Kind, r.Name, r.File, r.StartLine, r.EndLine)
}

// Label is the stable human-readable identity used in plans and tests,
// e.g. "tracking.kr:49 loop imageBlur" or "func main".
func (r *Region) Label() string {
	if r.Kind == FuncRegion {
		return "func " + r.Name
	}
	return fmt.Sprintf("%s:%d %s %s", r.File, r.StartLine, r.Kind, r.Func.Name)
}

// FuncInfo is the per-function region structure used by the runtime.
type FuncInfo struct {
	Func *ir.Func
	Root *Region
	// NestPath maps each block to the chain of regions containing it,
	// outermost (the function region) first.
	NestPath map[*ir.Block][]*Region
	// HeaderOf maps a loop header block to its loop region.
	HeaderOf map[*ir.Block]*Region
	Loops    []*cfg.Loop
	// LoopOf maps a loop region to its cfg loop.
	LoopOf map[*Region]*cfg.Loop
}

// Program is the whole-module region structure.
type Program struct {
	Module  *ir.Module
	Regions []*Region // indexed by Region.ID
	PerFunc map[*ir.Func]*FuncInfo
	Src     *source.File
}

// ByLabel returns the region with the given label, or nil.
func (p *Program) ByLabel(label string) *Region {
	for _, r := range p.Regions {
		if r.Label() == label {
			return r
		}
	}
	return nil
}

// Analyze builds the region structure of m.
func Analyze(m *ir.Module, src *source.File) *Program {
	p := &Program{Module: m, PerFunc: make(map[*ir.Func]*FuncInfo), Src: src}
	newRegion := func(k Kind, f *ir.Func, parent *Region, name string, start, end int) *Region {
		r := &Region{ID: len(p.Regions), Kind: k, Func: f, Parent: parent, Name: name, File: src.Name,
			StartLine: start, EndLine: end}
		p.Regions = append(p.Regions, r)
		if parent != nil {
			parent.Children = append(parent.Children, r)
		}
		return r
	}

	// Pass 1: create function regions so call edges can refer to them.
	for _, f := range m.Funcs {
		start := src.Pos(f.Pos).Line
		end := src.Pos(f.EndPos).Line
		root := newRegion(FuncRegion, f, nil, f.Name, start, end)
		p.PerFunc[f] = &FuncInfo{
			Func:     f,
			Root:     root,
			NestPath: make(map[*ir.Block][]*Region),
			HeaderOf: make(map[*ir.Block]*Region),
			LoopOf:   make(map[*Region]*cfg.Loop),
		}
	}

	// Pass 2: loops.
	for _, f := range m.Funcs {
		fi := p.PerFunc[f]
		g := cfg.New(f)
		idom := g.Dominators()
		loops := g.Loops(idom)
		fi.Loops = loops

		// Create loop+body regions outermost-first so parents exist.
		sort.SliceStable(loops, func(i, j int) bool { return loops[i].Depth < loops[j].Depth })
		loopRegion := make(map[*cfg.Loop]*Region)
		bodyRegion := make(map[*cfg.Loop]*Region)
		for _, l := range loops {
			parent := fi.Root
			if l.Parent != nil {
				parent = bodyRegion[l.Parent]
			}
			start, end := loopLines(src, l)
			lr := newRegion(LoopRegion, f, parent, fmt.Sprintf("loop@%d", start), start, end)
			br := newRegion(BodyRegion, f, lr, fmt.Sprintf("iter@%d", start), start, end)
			loopRegion[l] = lr
			bodyRegion[l] = br
			fi.HeaderOf[l.Header] = lr
			fi.LoopOf[lr] = l
		}

		// Innermost loop per block.
		innermost := make(map[*ir.Block]*cfg.Loop)
		for _, l := range loops { // outermost first; later (deeper) loops overwrite
			for _, b := range l.Blocks {
				if cur := innermost[b]; cur == nil || l.Depth > cur.Depth {
					innermost[b] = l
				}
			}
		}
		for _, b := range f.Blocks {
			path := []*Region{fi.Root}
			if l := innermost[b]; l != nil {
				b.LoopID = l.ID
				var chain []*cfg.Loop
				for x := l; x != nil; x = x.Parent {
					chain = append(chain, x)
				}
				for i := len(chain) - 1; i >= 0; i-- {
					path = append(path, loopRegion[chain[i]], bodyRegion[chain[i]])
				}
			}
			fi.NestPath[b] = path
		}

		// Call edges: attach callee functions to the innermost region of the
		// calling block.
		seen := map[[2]int]bool{}
		for _, b := range f.Blocks {
			path := fi.NestPath[b]
			owner := path[len(path)-1]
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpCall {
					key := [2]int{owner.ID, p.PerFunc[ins.Callee].Root.ID}
					if !seen[key] {
						seen[key] = true
						owner.Callees = append(owner.Callees, ins.Callee)
					}
				}
			}
		}
	}
	return p
}

// loopLines computes the source line extent of a loop.
func loopLines(src *source.File, l *cfg.Loop) (int, int) {
	start, end := 1<<30, 0
	for _, b := range l.Blocks {
		for _, ins := range b.Instrs {
			if ins.Pos <= 0 {
				continue
			}
			line := src.Pos(ins.Pos).Line
			if line < start {
				start = line
			}
			if line > end {
				end = line
			}
		}
	}
	if end == 0 {
		start, end = 1, 1
	}
	return start, end
}

// EdgeEvents describes the region transitions taken when control flows
// from one block to another within a function.
type EdgeEvents struct {
	Exit    []*Region // regions exited, innermost first
	Enter   []*Region // regions entered, outermost first
	Iterate *Region   // body region restarted by a loop back edge, or nil
}

// Edge computes the region events for the CFG edge from -> to.
// The result is deterministic and cheap enough to compute on the fly, but
// the interpreter memoizes it per edge.
func (fi *FuncInfo) Edge(from, to *ir.Block) EdgeEvents {
	pa := fi.NestPath[from]
	pb := fi.NestPath[to]

	// Back edge to a header of a loop containing `from`: the common prefix
	// includes that loop's body region; the body is iterated.
	if lr, ok := fi.HeaderOf[to]; ok {
		l := fi.LoopOf[lr]
		if l.Contains(from) {
			// Find body region index in pb (the region after lr).
			cut := len(pb)
			for i, r := range pb {
				if r == lr {
					cut = i + 1 // index of the body region
					break
				}
			}
			ev := EdgeEvents{Iterate: pb[cut]}
			// Exit anything inside the body on the `from` side.
			if len(pa) > cut+1 {
				for i := len(pa) - 1; i > cut; i-- {
					ev.Exit = append(ev.Exit, pa[i])
				}
			}
			return ev
		}
	}

	i := 0
	for i < len(pa) && i < len(pb) && pa[i] == pb[i] {
		i++
	}
	ev := EdgeEvents{}
	for j := len(pa) - 1; j >= i; j-- {
		ev.Exit = append(ev.Exit, pa[j])
	}
	ev.Enter = append(ev.Enter, pb[i:]...)
	return ev
}
