package bytecode

import (
	"fmt"

	"kremlin/internal/ir"
)

// operand-usage flags for the verifier.
const (
	useDst = 1 << iota
	useA
	useB
	useC
	// useDstSrc marks Dst as a *source* operand (opStIdx2 carries the
	// stored value there), so it may index the constant pool.
	useDstSrc
)

// regUse says which Ins fields index the register file for a given opcode.
// opGlobal's A and opPrintStr's A index other tables and are checked
// separately.
func regUse(op opcode) int {
	switch op {
	case opAddI, opSubI, opMulI, opDivI, opRemI, opAndI, opOrI,
		opDivIU, opRemIU,
		opAddF, opSubF, opMulF, opDivF, opCmpI, opCmpF,
		opPow, opMinI, opMaxI, opMinF, opMaxF, opDim,
		opView, opViewU, opLdIdxI, opLdIdxF, opLdIdxIU, opLdIdxFU,
		opIncJmpI, opDecJmpI:
		return useDst | useA | useB
	case opNegI, opNegF, opNot, opConvIF, opConvFI,
		opLoadI, opLoadF,
		opSqrt, opFabs, opFloor, opExp, opLog, opSin, opCos, opAbsI:
		return useDst | useA
	case opGlobal, opRand, opFrand:
		return useDst
	case opStore, opBrCmpI, opBrCmpF:
		return useA | useB
	case opStIdx, opStIdxU:
		return useA | useB | useC
	case opLdIdx2I, opLdIdx2F, opLdIdx2IU, opLdIdx2FU, opIncCmpBrI, opDecCmpBrI:
		return useDst | useA | useB | useC
	case opStIdx2, opStIdx2U:
		return useDstSrc | useA | useB | useC
	// The N-ary forms' B/C address FuncCode.IdxRegs, checked separately.
	case opLdIdxNI, opLdIdxNF, opLdIdxNIU, opLdIdxNFU:
		return useDst | useA
	case opStIdxN, opStIdxNU:
		return useDstSrc | useA
	case opSrand, opPrintValI, opPrintValF, opPrintValB, opBr, opRetVal:
		return useA
	case opNop, opPrintStr, opPrintNl, opJump, opRetVoid, opEndBlk:
		return 0
	// opCall's A is a function index, opAlloc's A an element kind; both
	// argument lists live in FuncCode.IdxRegs, checked separately.
	case opCall, opAlloc:
		return useDst
	}
	return -1 // unknown opcode
}

func isTermOp(op opcode) bool {
	switch op {
	case opBr, opBrCmpI, opBrCmpF, opIncCmpBrI, opDecCmpBrI,
		opIncJmpI, opDecJmpI, opJump, opRetVal, opRetVoid, opEndBlk:
		return true
	}
	return false
}

// Verify checks a compiled program's structural invariants — everything
// the check-free fast path assumes instead of testing at dispatch time:
// operand indices inside the register file, edge and block indices in
// range, terminators only in final position, templates referencing only
// shadow-register IDs. The krfuzz oracle runs it on every generated
// program; tests run it on every compiled fixture.
func Verify(p *Program) error {
	for _, fc := range p.Funcs {
		if err := verifyFunc(p, fc); err != nil {
			return fmt.Errorf("bytecode: func %s: %w", fc.F.Name, err)
		}
	}
	return nil
}

func verifyFunc(p *Program, fc *FuncCode) error {
	if int(fc.ConstBase) != fc.F.NumValues() {
		return fmt.Errorf("ConstBase %d != NumValues %d", fc.ConstBase, fc.F.NumValues())
	}
	if int(fc.NumRegs) != int(fc.ConstBase)+len(fc.Consts) {
		return fmt.Errorf("NumRegs %d != ConstBase %d + %d consts", fc.NumRegs, fc.ConstBase, len(fc.Consts))
	}
	if len(fc.Blocks) != len(fc.F.Blocks) {
		return fmt.Errorf("%d compiled blocks for %d IR blocks", len(fc.Blocks), len(fc.F.Blocks))
	}
	for bi := range fc.Blocks {
		b := &fc.Blocks[bi]
		if b.IR != fc.F.Blocks[bi] {
			return fmt.Errorf("block %d: IR pointer mismatch", bi)
		}
		if err := verifyBlock(p, fc, b); err != nil {
			return fmt.Errorf("block %d (%s): %w", bi, b.IR.Name, err)
		}
	}
	for _, gs := range fc.GlobalSeeds {
		if gs.Reg < 0 || gs.Reg >= fc.ConstBase {
			return fmt.Errorf("global seed register %d out of range [0,%d)", gs.Reg, fc.ConstBase)
		}
		if gs.Global < 0 || int(gs.Global) >= len(p.Mod.Globals) {
			return fmt.Errorf("global seed index %d out of range", gs.Global)
		}
	}
	for ei := range fc.Edges {
		e := &fc.Edges[ei]
		if e.Target < 0 || int(e.Target) >= len(fc.Blocks) {
			return fmt.Errorf("edge %d: target %d out of range", ei, e.Target)
		}
		if int(e.NPhis) != len(e.Phis) {
			return fmt.Errorf("edge %d: NPhis %d != %d phis", ei, e.NPhis, len(e.Phis))
		}
		for _, mv := range e.Moves {
			if mv.Dst < 0 || mv.Dst >= fc.ConstBase {
				return fmt.Errorf("edge %d: phi dst %d out of range", ei, mv.Dst)
			}
			if mv.Src < 0 || mv.Src >= fc.NumRegs {
				return fmt.Errorf("edge %d: phi src %d out of range", ei, mv.Src)
			}
		}
	}
	return nil
}

func verifyBlock(p *Program, fc *FuncCode, b *BBlock) error {
	if b.Exact && !b.NeedsSlow {
		return fmt.Errorf("Exact block is not NeedsSlow")
	}
	if b.NeedsSlow && !b.Exact {
		if b.Start != -1 || b.End != -1 {
			return fmt.Errorf("func %s: non-exact NeedsSlow block carries bytecode [%d,%d)", fc.F.Name, b.Start, b.End)
		}
	} else {
		if b.Start < 0 || b.End < b.Start || int(b.End) > len(fc.Code) {
			return fmt.Errorf("func %s: code range [%d,%d) out of bounds (%d) [%d insns]", fc.F.Name, b.Start, b.End, len(fc.Code), b.End-b.Start)
		}
		for pc := b.Start; pc < b.End; pc++ {
			ins := &fc.Code[pc]
			if err := verifyIns(p, fc, ins); err != nil {
				return fmt.Errorf("pc %d (%v): %w", pc, ins.Op, err)
			}
			if isTermOp(ins.Op) && pc != b.End-1 {
				return fmt.Errorf("pc %d: terminator %v before end of block", pc, ins.Op)
			}
			if b.Exact {
				switch ins.Op {
				case opBrCmpI, opBrCmpF, opIncCmpBrI, opDecCmpBrI, opIncJmpI, opDecJmpI, opLdIdxI, opLdIdxF, opStIdx,
					opLdIdx2I, opLdIdx2F, opStIdx2, opLdIdxNI, opLdIdxNF, opStIdxN:
					return fmt.Errorf("pc %d: fused opcode %v in exact block", pc, ins.Op)
				case opViewU, opLdIdxIU, opLdIdxFU, opStIdxU, opLdIdx2IU, opLdIdx2FU,
					opStIdx2U, opLdIdxNIU, opLdIdxNFU, opStIdxNU, opDivIU, opRemIU:
					// The exact path is the checked fallback: an unchecked
					// opcode here could silently skip a reference error.
					return fmt.Errorf("pc %d: unchecked opcode %v in exact block", pc, ins.Op)
				}
			} else if ins.Op == opCall || ins.Op == opAlloc {
				return fmt.Errorf("pc %d: exact-only opcode %v in fast block", pc, ins.Op)
			}
		}
		if b.Exact && int(b.End) > len(fc.Lat) {
			return fmt.Errorf("func %s: exact block [%d,%d) outside latency table (%d)", fc.F.Name, b.Start, b.End, len(fc.Lat))
		}
		if b.Term != termNone && b.End > b.Start && !isTermOp(fc.Code[b.End-1].Op) {
			return fmt.Errorf("terminated block ends in non-terminator %v", fc.Code[b.End-1].Op)
		}
		if !b.Exact && b.Term == termNone && (b.End == b.Start || fc.Code[b.End-1].Op != opEndBlk) {
			return fmt.Errorf("dangling fast block does not end in endblk")
		}
		if b.Exact {
			for pc := b.Start; pc < b.End; pc++ {
				if fc.Code[pc].Op == opEndBlk {
					return fmt.Errorf("pc %d: endblk in exact block", pc)
				}
			}
		}
	}
	switch b.Term {
	case termBr:
		if b.Edge0 < 0 || int(b.Edge0) >= len(fc.Edges) || b.Edge1 < 0 || int(b.Edge1) >= len(fc.Edges) {
			return fmt.Errorf("branch edges %d/%d out of range (%d)", b.Edge0, b.Edge1, len(fc.Edges))
		}
	case termJump:
		if b.Edge0 < 0 || int(b.Edge0) >= len(fc.Edges) {
			return fmt.Errorf("jump edge %d out of range (%d)", b.Edge0, len(fc.Edges))
		}
	case termNone:
		// The slow path maps branches through the block's final terminator;
		// a dangling block must therefore contain no branch at all.
		for _, ins := range b.IR.Instrs {
			if ins.Op == ir.OpBr || ins.Op == ir.OpJump {
				return fmt.Errorf("dangling block contains mid-block branch")
			}
		}
	}
	if b.Tpl != nil {
		if b.NeedsSlow {
			return fmt.Errorf("NeedsSlow block carries an HCPA template")
		}
		for i := range b.Tpl.Ins {
			ti := &b.Tpl.Ins[i]
			if ti.Res >= fc.ConstBase {
				return fmt.Errorf("template ins %d: result %d is not a shadow register", i, ti.Res)
			}
			for _, a := range ti.Args {
				if a < 0 || a >= fc.ConstBase {
					return fmt.Errorf("template ins %d: arg %d is not a shadow register", i, a)
				}
			}
		}
	}
	return nil
}

func verifyIns(p *Program, fc *FuncCode, ins *Ins) error {
	use := regUse(ins.Op)
	if use < 0 {
		return fmt.Errorf("unknown opcode %d", ins.Op)
	}
	check := func(name string, v int32, lim int32) error {
		if v < 0 || v >= lim {
			return fmt.Errorf("%s operand %d out of range [0,%d)", name, v, lim)
		}
		return nil
	}
	if use&useDst != 0 {
		// Results always land in a value slot, never the constant pool.
		if err := check("dst", ins.Dst, fc.ConstBase); err != nil {
			return err
		}
	}
	if use&useDstSrc != 0 {
		if err := check("dst(src)", ins.Dst, fc.NumRegs); err != nil {
			return err
		}
	}
	if use&useA != 0 {
		if err := check("a", ins.A, fc.NumRegs); err != nil {
			return err
		}
	}
	if use&useB != 0 {
		if err := check("b", ins.B, fc.NumRegs); err != nil {
			return err
		}
	}
	if use&useC != 0 {
		if err := check("c", ins.C, fc.NumRegs); err != nil {
			return err
		}
	}
	switch ins.Op {
	case opIncCmpBrI, opDecCmpBrI:
		if !ir.BinKind(ins.Pos).IsComparison() {
			return fmt.Errorf("latch comparison kind %d is not a comparison", ins.Pos)
		}
	case opGlobal:
		if ins.A < 0 || int(ins.A) >= len(p.Mod.Globals) {
			return fmt.Errorf("global index %d out of range", ins.A)
		}
	case opPrintStr:
		if ins.A < 0 || int(ins.A) >= len(fc.Strs) {
			return fmt.Errorf("string index %d out of range", ins.A)
		}
	case opCall, opAlloc:
		if ins.Op == opCall && (ins.A < 0 || int(ins.A) >= len(p.Funcs)) {
			return fmt.Errorf("callee index %d out of range", ins.A)
		}
		if ins.Op == opAlloc && ins.C < 1 {
			return fmt.Errorf("allocation with %d dimensions", ins.C)
		}
		if ins.C < 0 || ins.B < 0 || int(ins.B)+int(ins.C) > len(fc.IdxRegs) {
			return fmt.Errorf("arg list [%d,%d+%d) out of range [0,%d)", ins.B, ins.B, ins.C, len(fc.IdxRegs))
		}
		for _, r := range fc.IdxRegs[ins.B : ins.B+ins.C] {
			if err := check("arg", r, fc.NumRegs); err != nil {
				return err
			}
		}
	case opLdIdxNI, opLdIdxNF, opStIdxN, opLdIdxNIU, opLdIdxNFU, opStIdxNU:
		if ins.C < 3 || ins.B < 0 || int(ins.B)+int(ins.C) > len(fc.IdxRegs) {
			return fmt.Errorf("index list [%d,%d+%d) out of range [0,%d)", ins.B, ins.B, ins.C, len(fc.IdxRegs))
		}
		for _, r := range fc.IdxRegs[ins.B : ins.B+ins.C] {
			if err := check("idx", r, fc.NumRegs); err != nil {
				return err
			}
		}
	}
	return nil
}
