package bytecode

import (
	"math"

	"kremlin/internal/absint"
	"kremlin/internal/ast"
	"kremlin/internal/instrument"
	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/regions"
)

// Compile lowers a module into flat bytecode. prog and instr are the
// region analysis and instrumentation tables the module was compiled with
// (the same ones the tree engine consults at run time); edges, control
// pushes, and region events are resolved against them once, here. facts,
// when non-nil, supplies the abstract interpreter's proofs: views proven
// in bounds and divisors proven nonzero compile to unchecked opcode
// variants and open fusion windows that faultable instructions would
// otherwise close. A nil facts (-absint=off) compiles fully checked code;
// profiles, plans, and program output are identical either way — only the
// dispatch cost of the proven checks differs.
func Compile(mod *ir.Module, prog *regions.Program, instr *instrument.Module, facts *absint.Facts) *Program {
	p := &Program{Mod: mod, Prog: prog, ByFunc: make(map[*ir.Func]*FuncCode, len(mod.Funcs))}
	fidx := make(map[*ir.Func]int32, len(mod.Funcs))
	for i, f := range mod.Funcs {
		fidx[f] = int32(i)
	}
	for _, f := range mod.Funcs {
		fc := compileFunc(f, prog, instr, fidx, facts)
		p.Funcs = append(p.Funcs, fc)
		p.ByFunc[f] = fc
	}
	return p
}

// constKey dedups pool constants by kind and bit pattern.
type constKey struct {
	kind uint8 // 0 int, 1 float, 2 bool
	bits uint64
}

type fnCompiler struct {
	f        *ir.Func
	fc       *FuncCode
	fi       *instrument.FuncInstr
	idxOf    map[*ir.Block]int32
	uses     []int32 // value ID -> static reference count
	constIdx map[constKey]int32
	fidx     map[*ir.Func]int32 // function -> Program.Funcs index (opCall)
	// facts are the absint proofs consulted for unchecked emission; nil
	// disables elimination. inExact suppresses them while emitExact runs:
	// the exact fallback path must stay fully checked so faulting programs
	// report the reference error at the reference position.
	facts   *absint.Facts
	inExact bool
}

// provenView reports whether the view's index was proven within its
// dimension on every execution (implies the operand has rank, so both the
// rank and bounds checks may be skipped).
func (c *fnCompiler) provenView(ins *ir.Instr) bool {
	return c.facts != nil && !c.inExact && c.facts.InBounds(ins)
}

// provenDiv reports whether an integer division/modulo's divisor was
// proven nonzero on every execution.
func (c *fnCompiler) provenDiv(ins *ir.Instr) bool {
	return c.facts != nil && !c.inExact && c.facts.NonZeroDivisor(ins)
}

func compileFunc(f *ir.Func, prog *regions.Program, instr *instrument.Module, fidx map[*ir.Func]int32, facts *absint.Facts) *FuncCode {
	c := &fnCompiler{
		f:     f,
		fidx:  fidx,
		facts: facts,
		fc: &FuncCode{
			F:         f,
			ConstBase: int32(f.NumValues()),
			Root:      prog.PerFunc[f].Root,
		},
		fi:       instr.PerFunc[f],
		idxOf:    make(map[*ir.Block]int32, len(f.Blocks)),
		uses:     make([]int32, f.NumValues()),
		constIdx: make(map[constKey]int32),
	}
	for i, b := range f.Blocks {
		c.idxOf[b] = int32(i)
		for _, ins := range b.Instrs {
			for _, a := range ins.Args {
				if ai, ok := a.(*ir.Instr); ok {
					c.uses[ai.ID]++
				}
			}
		}
	}
	c.fc.Blocks = make([]BBlock, len(f.Blocks))
	for i, b := range f.Blocks {
		c.compileBlock(int32(i), b)
	}
	c.fc.NumRegs = c.fc.ConstBase + int32(len(c.fc.Consts))
	return c.fc
}

// opnd resolves an IR operand to a register-file index: instruction
// results keep their dense value IDs; constants are interned into the
// pool, which occupies the top of the register file.
func (c *fnCompiler) opnd(v ir.Value) int32 {
	switch v := v.(type) {
	case *ir.Instr:
		return int32(v.ID)
	case *ir.ConstInt:
		return c.constReg(constKey{0, uint64(v.V)}, val{i: v.V})
	case *ir.ConstFloat:
		return c.constReg(constKey{1, math.Float64bits(v.V)}, val{f: v.V})
	case *ir.ConstBool:
		var iv int64
		if v.V {
			iv = 1
		}
		return c.constReg(constKey{2, uint64(iv)}, val{i: iv})
	}
	return c.constReg(constKey{0, 0}, val{})
}

func (c *fnCompiler) constReg(k constKey, v val) int32 {
	if idx, ok := c.constIdx[k]; ok {
		return c.fc.ConstBase + idx
	}
	idx := int32(len(c.fc.Consts))
	c.fc.Consts = append(c.fc.Consts, v)
	c.constIdx[k] = idx
	return c.fc.ConstBase + idx
}

// pureBuiltins are template-eligible: they read and write only registers
// (no shadow memory, IO, RNG, or failure-free requirement — dim can fail,
// but a mid-block runtime error aborts the whole run, which is
// unobservable since errors return a nil Result).
var pureBuiltins = map[string]bool{
	"sqrt": true, "fabs": true, "floor": true, "exp": true, "log": true,
	"sin": true, "cos": true, "pow": true, "abs": true, "min": true,
	"max": true, "dim": true,
}

// knownBuiltins is everything the engines implement; anything else makes
// the block slow-path so the reference error text is produced.
var knownBuiltins = map[string]bool{
	"rand": true, "frand": true, "srand": true,
	"printstr": true, "printval": true, "printnl": true,
}

func isKnownBuiltin(name string) bool { return pureBuiltins[name] || knownBuiltins[name] }

func (c *fnCompiler) compileBlock(bi int32, blk *ir.Block) {
	bb := &c.fc.Blocks[bi]
	bb.IR = blk
	bb.Start, bb.End = -1, -1

	nPhis := 0
	for _, ins := range blk.Instrs {
		if ins.Op != ir.OpPhi {
			break
		}
		nPhis++
	}
	body := blk.Instrs[nPhis:]

	for _, ins := range body {
		bb.NSteps++
		bb.LatSum += ins.Latency()
	}

	// Classify. NeedsSlow blocks take a per-instruction path
	// unconditionally (exact bytecode when representable, the reference
	// walk otherwise); pure blocks additionally get an HCPA template.
	pure := len(body) > 0
	exactOK := true
	for i, ins := range body {
		switch ins.Op {
		case ir.OpParam, ir.OpBin, ir.OpNeg, ir.OpNot, ir.OpConvert,
			ir.OpGlobal, ir.OpView:
			// template-eligible
		case ir.OpLoad, ir.OpStore:
			pure = false
		case ir.OpBuiltin:
			if !isKnownBuiltin(ins.Builtin) {
				bb.NeedsSlow = true
				exactOK = false
			}
			if !pureBuiltins[ins.Builtin] {
				pure = false
			}
		case ir.OpBr, ir.OpJump:
			if i != len(body)-1 {
				// Mid-block terminator: only the reference walk reproduces
				// the interpreter's continue-past-terminator behavior.
				bb.NeedsSlow = true
				exactOK = false
			}
		case ir.OpRet:
			pure = false // RetVec capture needs a real Step
			if i != len(body)-1 {
				bb.NeedsSlow = true
				exactOK = false
			}
		case ir.OpCall, ir.OpAllocArray:
			// Calls perturb the step counter mid-block; allocations can
			// fail the heap cap mid-block. Both must check per instruction.
			bb.NeedsSlow = true
		default:
			bb.NeedsSlow = true
			exactOK = false
		}
	}
	if t := blk.Terminator(); t == nil {
		bb.Term = termNone
		pure = false
		// A block that dangles without a terminator but branches mid-block
		// cannot be mapped onto precompiled edges; force the reference walk.
		for _, ins := range body {
			if ins.Op == ir.OpBr || ins.Op == ir.OpJump {
				bb.NeedsSlow = true
				exactOK = false
			}
		}
	} else {
		switch t.Op {
		case ir.OpBr:
			bb.Term = termBr
		case ir.OpJump:
			bb.Term = termJump
		default:
			bb.Term = termRet
		}
	}

	if popAt, ok := c.fi.PopAt[blk]; ok && popAt != nil {
		bb.HasPush = true
		bb.PopAt = popAt
	}

	// Edges (the terminator's targets, in then/else order).
	if t := blk.Terminator(); t != nil {
		switch t.Op {
		case ir.OpBr:
			bb.Edge0 = c.addEdge(blk, t.Targets[0])
			bb.Edge1 = c.addEdge(blk, t.Targets[1])
		case ir.OpJump:
			bb.Edge0 = c.addEdge(blk, t.Targets[0])
		}
	}

	if bb.NeedsSlow {
		if exactOK {
			c.emitExact(bb, body)
		}
		return
	}
	c.emit(bb, body)
	if pure {
		bb.Tpl = c.template(body)
	}
}

// addEdge precompiles the CFG edge blk→to: target index, phi moves and
// Step list, predecessor index, and region events.
func (c *fnCompiler) addEdge(blk, to *ir.Block) int32 {
	e := Edge{Target: c.idxOf[to], PredIdx: -1}
	for i, p := range to.Preds {
		if p == blk {
			e.PredIdx = int32(i)
			break
		}
	}
	for _, ins := range to.Instrs {
		if ins.Op != ir.OpPhi {
			break
		}
		e.NPhis++
		e.Phis = append(e.Phis, ins)
		if e.PredIdx >= 0 && int(e.PredIdx) < len(ins.Args) {
			e.Moves = append(e.Moves, Move{Dst: int32(ins.ID), Src: c.opnd(ins.Args[e.PredIdx])})
		}
	}
	ev := c.fi.EdgeEvents(blk, to)
	e.NExit = int32(len(ev.Exit))
	e.Iterate = ev.Iterate
	e.Enter = ev.Enter
	idx := int32(len(c.fc.Edges))
	c.fc.Edges = append(c.fc.Edges, e)
	return idx
}

// template builds the batched HCPA effect of a pure block: one entry per
// stepped instruction (params excluded — the interpreter never Steps
// them), argument vectors resolved to register IDs with constants and
// broken (induction/reduction) dependencies dropped at compile time.
func (c *fnCompiler) template(body []*ir.Instr) *kremlib.BlockTemplate {
	tpl := &kremlib.BlockTemplate{}
	for _, ins := range body {
		if ins.Op == ir.OpParam {
			continue
		}
		ti := kremlib.TplIns{Res: -1, Lat: ins.Latency()}
		if ins.HasResult() {
			ti.Res = int32(ins.ID)
		}
		for i, a := range ins.Args {
			if i == ins.BreakArg {
				continue
			}
			if ai, ok := a.(*ir.Instr); ok {
				ti.Args = append(ti.Args, int32(ai.ID))
			}
		}
		tpl.TotalLat += ti.Lat
		tpl.Ins = append(tpl.Ins, ti)
	}
	return tpl
}

// transparent reports whether an instruction may sit between a fused view
// and its load/store without breaking exact engine equivalence. Fusing
// moves the view's bounds check later in the block; that is unobservable
// as long as nothing in between can fault (the wrong error would win) or
// write to the output stream (the tree engine would have stopped first).
// Everything else — register arithmetic, heap reads, even RNG draws — is
// invisible once a runtime error aborts the run (errors return no result
// and no partial state). Instructions the abstract interpreter proved
// fault-free — in-bounds views, nonzero divisors — are transparent too:
// they cannot produce the error that would win.
func (c *fnCompiler) transparent(ins *ir.Instr) bool {
	switch ins.Op {
	case ir.OpBin:
		// Integer division and modulo fault on zero; all other binary ops
		// (including float division) are total.
		if ins.Bin == ir.BinDiv || ins.Bin == ir.BinRem {
			return ins.Args[0].Type().Elem == ast.Float || c.provenDiv(ins)
		}
		return true
	case ir.OpNeg, ir.OpNot, ir.OpConvert, ir.OpGlobal, ir.OpLoad, ir.OpParam:
		return true
	case ir.OpView:
		return c.provenView(ins)
	case ir.OpBuiltin:
		switch ins.Builtin {
		case "sqrt", "fabs", "floor", "exp", "log", "sin", "cos", "pow",
			"abs", "min", "max", "rand", "frand", "srand":
			return true
		}
		// dim faults; prints are observable output; anything unknown
		// forces the whole block slow-path regardless.
		return false
	}
	// Unproven views fault, stores/terminators/calls close the window.
	return false
}

// fusion decides the block's superinstruction groups: a comparison feeding
// the block's branch (single use, adjacent) fuses into a compare-branch,
// returned in fuse; a single-use view chain feeding a load/store through
// transparent windows fuses into one indexed access of the chain's rank,
// returned in chains (views outermost-first). Fused producers are elided
// from the stream — their registers are never read (single use), and the
// transparent-window rule preserves the exact error ordering relative to
// observable effects. A chain may stop short of the root array (e.g. an
// index expression that can fault between two views closes the window);
// the remaining outer views then emit normally and the fused op indexes
// the innermost surviving view's register.
func (c *fnCompiler) fusion(body []*ir.Instr) (fuse map[*ir.Instr]*ir.Instr, chains map[*ir.Instr][]*ir.Instr, latch map[*ir.Instr]*ir.Instr) {
	fuse = make(map[*ir.Instr]*ir.Instr)
	chains = make(map[*ir.Instr][]*ir.Instr)
	latch = make(map[*ir.Instr]*ir.Instr)
	single := func(ins *ir.Instr) bool { return c.uses[ins.ID] == 1 }
	pos := make(map[*ir.Instr]int, len(body))
	for i, ins := range body {
		pos[ins] = i
	}
	// reaches reports whether the producer at index pi may fuse into the
	// consumer at index ci: everything strictly between must be
	// transparent.
	reaches := func(pi, ci int) bool {
		for k := pi + 1; k < ci; k++ {
			if !c.transparent(body[k]) {
				return false
			}
		}
		return true
	}
	for i := 1; i < len(body); i++ {
		ins, prev := body[i], body[i-1]
		switch ins.Op {
		case ir.OpBr:
			cmp, ok := ins.Args[0].(*ir.Instr)
			if !ok || cmp != prev || cmp.Op != ir.OpBin || !cmp.Bin.IsComparison() || !single(cmp) {
				continue
			}
			fuse[ins] = cmp
			// Counted-loop latch: the comparison's left operand is an
			// integer add/sub immediately before it. Strict adjacency is
			// required — the counter is multi-use (the back-edge phi reads
			// it), so no instruction may sit between its old and new
			// position and observe a stale register.
			if i < 2 {
				continue
			}
			step, ok := cmp.Args[0].(*ir.Instr)
			if ok && step == body[i-2] && step.Op == ir.OpBin &&
				(step.Bin == ir.BinAdd || step.Bin == ir.BinSub) &&
				step.Args[0].Type().Elem != ast.Float {
				latch[ins] = step
			}
		case ir.OpJump:
			// Back-edge/accumulator tail: an integer add/sub immediately
			// before the jump folds into it. Adjacency keeps it exact (the
			// result register is still written; nothing sits between).
			if prev.Op == ir.OpBin && (prev.Bin == ir.BinAdd || prev.Bin == ir.BinSub) &&
				prev.Args[0].Type().Elem != ast.Float {
				latch[ins] = prev
			}
		case ir.OpLoad, ir.OpStore:
			view, ok := ins.Args[0].(*ir.Instr)
			if !ok || view.Op != ir.OpView || !single(view) || view.Typ.Dims != 0 {
				continue
			}
			vi, inBlock := pos[view]
			if !inBlock || !reaches(vi, i) {
				continue
			}
			// Walk outward through single-use views in the same block,
			// each reachable through a transparent window. Index chains
			// report every bounds error at the root expression, so all
			// links share one source position — required, since the fused
			// op carries a single Pos slot. A chain of views proven in
			// bounds can never report an error at all, so proven links may
			// span differing positions (the chain then compiles to an
			// unchecked opcode; see emitIns).
			chain := []*ir.Instr{view}
			cur, curIdx := view, vi
			allProven := c.provenView(view)
			for {
				src, ok := cur.Args[0].(*ir.Instr)
				if !ok || src.Op != ir.OpView || !single(src) {
					break
				}
				srcProven := c.provenView(src)
				if src.Pos != cur.Pos && !(allProven && srcProven) {
					break
				}
				si, inB := pos[src]
				if !inB || !reaches(si, curIdx) {
					break
				}
				chain = append(chain, src)
				cur, curIdx = src, si
				allProven = allProven && srcProven
			}
			// Reverse to outermost-first: index emission order.
			for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
				chain[l], chain[r] = chain[r], chain[l]
			}
			chains[ins] = chain
		}
	}
	return fuse, chains, latch
}

func (c *fnCompiler) emit(bb *BBlock, body []*ir.Instr) {
	fuse, chains, latch := c.fusion(body)
	elided := make(map[*ir.Instr]bool, len(fuse)+len(chains)+len(latch))
	for _, producer := range fuse {
		elided[producer] = true
	}
	for _, chain := range chains {
		for _, v := range chain {
			elided[v] = true
		}
	}
	for _, step := range latch {
		elided[step] = true
	}
	bb.Start = int32(len(c.fc.Code))
	for _, ins := range body {
		if elided[ins] || ins.Op == ir.OpParam {
			continue
		}
		if ins.Op == ir.OpGlobal {
			// Global descriptors are fixed after startup allocation: seed
			// the result register once per call instead of reloading it on
			// every pass through the block.
			c.fc.GlobalSeeds = append(c.fc.GlobalSeeds,
				GlobalSeed{Reg: int32(ins.ID), Global: int32(ins.Global.Index)})
			continue
		}
		c.emitIns(ins, fuse[ins], chains[ins], latch[ins])
	}
	if bb.Term == termNone {
		// Close dangling blocks with a sentinel so the dispatch loop never
		// needs an end-of-block bounds check (terminated blocks end in a
		// terminator opcode already).
		c.push(Ins{Op: opEndBlk})
	}
	bb.End = int32(len(c.fc.Code))
}

func (c *fnCompiler) push(i Ins) {
	c.fc.Code = append(c.fc.Code, i)
	c.fc.Lat = append(c.fc.Lat, 0)
}

// emitExact lowers a NeedsSlow block to unfused 1:1 bytecode — one
// instruction per IR instruction (params become nops), calls and
// allocations included — recording each instruction's IR latency in
// FuncCode.Lat. execExact replays it with the reference engine's exact
// per-instruction budget/liveness/work accounting in non-HCPA modes.
func (c *fnCompiler) emitExact(bb *BBlock, body []*ir.Instr) {
	c.inExact = true
	defer func() { c.inExact = false }()
	bb.Start = int32(len(c.fc.Code))
	for _, ins := range body {
		switch ins.Op {
		case ir.OpParam:
			c.push(Ins{Op: opNop})
		case ir.OpCall:
			c.push(Ins{Op: opCall, Dst: int32(ins.ID), A: c.fidx[ins.Callee],
				B: c.argList(ins.Args), C: int32(len(ins.Args)), Pos: int32(ins.Pos)})
		case ir.OpAllocArray:
			c.push(Ins{Op: opAlloc, Dst: int32(ins.ID), A: int32(ins.Typ.Elem),
				B: c.argList(ins.Args), C: int32(len(ins.Args)), Pos: int32(ins.Pos)})
		default:
			c.emitIns(ins, nil, nil, nil)
		}
		c.fc.Lat[len(c.fc.Lat)-1] = uint32(ins.Latency())
	}
	bb.End = int32(len(c.fc.Code))
	bb.Exact = true
}

// argList interns an opCall/opAlloc operand list into FuncCode.IdxRegs
// and returns the slice base.
func (c *fnCompiler) argList(args []ir.Value) int32 {
	base := int32(len(c.fc.IdxRegs))
	for _, a := range args {
		c.fc.IdxRegs = append(c.fc.IdxRegs, c.opnd(a))
	}
	return base
}

// idxList interns a rank-3+ chain's index registers and returns the slice
// base in FuncCode.IdxRegs.
func (c *fnCompiler) idxList(chain []*ir.Instr) int32 {
	base := int32(len(c.fc.IdxRegs))
	for _, v := range chain {
		c.fc.IdxRegs = append(c.fc.IdxRegs, c.opnd(v.Args[1]))
	}
	return base
}

func (c *fnCompiler) emitIns(ins *ir.Instr, fused *ir.Instr, chain []*ir.Instr, latch *ir.Instr) {
	dst := int32(ins.ID)
	pos := int32(ins.Pos)
	switch ins.Op {
	case ir.OpBin:
		isFloat := ins.Args[0].Type().Elem == ast.Float
		a, b := c.opnd(ins.Args[0]), c.opnd(ins.Args[1])
		var op opcode
		switch ins.Bin {
		case ir.BinAdd:
			op = pick(isFloat, opAddF, opAddI)
		case ir.BinSub:
			op = pick(isFloat, opSubF, opSubI)
		case ir.BinMul:
			op = pick(isFloat, opMulF, opMulI)
		case ir.BinDiv:
			op = pick(isFloat, opDivF, opDivI)
			if !isFloat && c.provenDiv(ins) {
				op = opDivIU
			}
		case ir.BinRem:
			op = pick(c.provenDiv(ins), opRemIU, opRemI)
		case ir.BinAnd:
			op = opAndI
		case ir.BinOr:
			op = opOrI
		default: // comparison
			c.push(Ins{Op: pick(isFloat, opCmpF, opCmpI), Dst: dst, A: a, B: b, C: int32(ins.Bin), Pos: pos})
			return
		}
		c.push(Ins{Op: op, Dst: dst, A: a, B: b, Pos: pos})
	case ir.OpNeg:
		c.push(Ins{Op: pick(ins.Typ.Elem == ast.Float, opNegF, opNegI), Dst: dst, A: c.opnd(ins.Args[0])})
	case ir.OpNot:
		c.push(Ins{Op: opNot, Dst: dst, A: c.opnd(ins.Args[0])})
	case ir.OpConvert:
		c.push(Ins{Op: pick(ins.Typ.Elem == ast.Float, opConvIF, opConvFI), Dst: dst, A: c.opnd(ins.Args[0])})
	case ir.OpGlobal:
		c.push(Ins{Op: opGlobal, Dst: dst, A: int32(ins.Global.Index)})
	case ir.OpView:
		c.push(Ins{Op: pick(c.provenView(ins), opViewU, opView),
			Dst: dst, A: c.opnd(ins.Args[0]), B: c.opnd(ins.Args[1]), Pos: pos})
	case ir.OpLoad:
		isF := ins.Typ.Elem == ast.Float
		// A chain whose every view is proven in bounds compiles to the
		// unchecked form: no level can fault, so no check and no Pos fidelity
		// is needed.
		uc := len(chain) > 0
		for _, v := range chain {
			uc = uc && c.provenView(v)
		}
		switch len(chain) {
		case 0:
			c.push(Ins{Op: pick(isF, opLoadF, opLoadI), Dst: dst, A: c.opnd(ins.Args[0])})
		case 1:
			op := pick(isF, opLdIdxF, opLdIdxI)
			if uc {
				op = pick(isF, opLdIdxFU, opLdIdxIU)
			}
			c.push(Ins{Op: op, Dst: dst,
				A: c.opnd(chain[0].Args[0]), B: c.opnd(chain[0].Args[1]), Pos: int32(chain[0].Pos)})
		case 2:
			op := pick(isF, opLdIdx2F, opLdIdx2I)
			if uc {
				op = pick(isF, opLdIdx2FU, opLdIdx2IU)
			}
			c.push(Ins{Op: op, Dst: dst,
				A: c.opnd(chain[0].Args[0]), B: c.opnd(chain[0].Args[1]),
				C: c.opnd(chain[1].Args[1]), Pos: int32(chain[0].Pos)})
		default:
			op := pick(isF, opLdIdxNF, opLdIdxNI)
			if uc {
				op = pick(isF, opLdIdxNFU, opLdIdxNIU)
			}
			c.push(Ins{Op: op, Dst: dst,
				A: c.opnd(chain[0].Args[0]), B: c.idxList(chain), C: int32(len(chain)),
				Pos: int32(chain[0].Pos)})
		}
	case ir.OpStore:
		uc := len(chain) > 0
		for _, v := range chain {
			uc = uc && c.provenView(v)
		}
		switch len(chain) {
		case 0:
			c.push(Ins{Op: opStore, A: c.opnd(ins.Args[0]), B: c.opnd(ins.Args[1])})
		case 1:
			c.push(Ins{Op: pick(uc, opStIdxU, opStIdx),
				A: c.opnd(chain[0].Args[0]), B: c.opnd(chain[0].Args[1]),
				C: c.opnd(ins.Args[1]), Pos: int32(chain[0].Pos)})
		case 2:
			c.push(Ins{Op: pick(uc, opStIdx2U, opStIdx2), Dst: c.opnd(ins.Args[1]),
				A: c.opnd(chain[0].Args[0]), B: c.opnd(chain[0].Args[1]),
				C: c.opnd(chain[1].Args[1]), Pos: int32(chain[0].Pos)})
		default:
			c.push(Ins{Op: pick(uc, opStIdxNU, opStIdxN), Dst: c.opnd(ins.Args[1]),
				A: c.opnd(chain[0].Args[0]), B: c.idxList(chain), C: int32(len(chain)),
				Pos: int32(chain[0].Pos)})
		}
	case ir.OpBuiltin:
		c.emitBuiltin(ins)
	case ir.OpBr:
		if latch != nil {
			// The counter write survives (Dst); the single-use comparison
			// is elided entirely.
			c.push(Ins{Op: pick(latch.Bin == ir.BinSub, opDecCmpBrI, opIncCmpBrI),
				Dst: int32(latch.ID), A: c.opnd(latch.Args[0]), B: c.opnd(latch.Args[1]),
				C: c.opnd(fused.Args[1]), Pos: int32(fused.Bin)})
			return
		}
		if fused != nil {
			isFloat := fused.Args[0].Type().Elem == ast.Float
			c.push(Ins{Op: pick(isFloat, opBrCmpF, opBrCmpI),
				A: c.opnd(fused.Args[0]), B: c.opnd(fused.Args[1]), C: int32(fused.Bin)})
			return
		}
		c.push(Ins{Op: opBr, A: c.opnd(ins.Args[0])})
	case ir.OpJump:
		if latch != nil {
			c.push(Ins{Op: pick(latch.Bin == ir.BinSub, opDecJmpI, opIncJmpI),
				Dst: int32(latch.ID), A: c.opnd(latch.Args[0]), B: c.opnd(latch.Args[1])})
			return
		}
		c.push(Ins{Op: opJump})
	case ir.OpRet:
		if len(ins.Args) > 0 {
			c.push(Ins{Op: opRetVal, A: c.opnd(ins.Args[0])})
			return
		}
		c.push(Ins{Op: opRetVoid})
	}
}

func (c *fnCompiler) emitBuiltin(ins *ir.Instr) {
	dst := int32(ins.ID)
	pos := int32(ins.Pos)
	argN := func(i int) int32 { return c.opnd(ins.Args[i]) }
	switch ins.Builtin {
	case "sqrt", "fabs", "floor", "exp", "log", "sin", "cos":
		op := map[string]opcode{
			"sqrt": opSqrt, "fabs": opFabs, "floor": opFloor,
			"exp": opExp, "log": opLog, "sin": opSin, "cos": opCos,
		}[ins.Builtin]
		c.push(Ins{Op: op, Dst: dst, A: argN(0)})
	case "pow":
		c.push(Ins{Op: opPow, Dst: dst, A: argN(0), B: argN(1)})
	case "abs":
		c.push(Ins{Op: opAbsI, Dst: dst, A: argN(0)})
	case "min":
		c.push(Ins{Op: pick(ins.Typ.Elem == ast.Float, opMinF, opMinI), Dst: dst, A: argN(0), B: argN(1)})
	case "max":
		c.push(Ins{Op: pick(ins.Typ.Elem == ast.Float, opMaxF, opMaxI), Dst: dst, A: argN(0), B: argN(1)})
	case "rand":
		c.push(Ins{Op: opRand, Dst: dst})
	case "frand":
		c.push(Ins{Op: opFrand, Dst: dst})
	case "srand":
		c.push(Ins{Op: opSrand, A: argN(0)})
	case "dim":
		c.push(Ins{Op: opDim, Dst: dst, A: argN(0), B: argN(1), Pos: pos})
	case "printstr":
		si := int32(len(c.fc.Strs))
		c.fc.Strs = append(c.fc.Strs, ins.Aux)
		c.push(Ins{Op: opPrintStr, A: si})
	case "printval":
		var op opcode
		switch ins.Args[0].Type().Elem {
		case ast.Float:
			op = opPrintValF
		case ast.Bool:
			op = opPrintValB
		default:
			op = opPrintValI
		}
		c.push(Ins{Op: op, A: argN(0)})
	case "printnl":
		c.push(Ins{Op: opPrintNl})
	}
}

func pick(cond bool, a, b opcode) opcode {
	if cond {
		return a
	}
	return b
}
