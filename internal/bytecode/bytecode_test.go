package bytecode

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"kremlin/internal/absint"
	"kremlin/internal/analysis"
	"kremlin/internal/instrument"
	"kremlin/internal/interp"
	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/limits"
	"kremlin/internal/parser"
	"kremlin/internal/regions"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

// compiled carries one Kr program through both engines: the IR module for
// the tree-walking interpreter and the lowered bytecode for the VM.
type compiled struct {
	mod   *ir.Module
	regs  *regions.Program
	instr *instrument.Module
	prog  *Program
}

// compileKr runs the same front-end pipeline as the root package (parse →
// typecheck → irbuild → analysis → regions → instrument) and lowers the
// result to bytecode. The bytecode must pass structural verification.
func compileKr(t testing.TB, src string) *compiled {
	t.Helper()
	file := source.NewFile("test.kr", src)
	errs := &source.ErrorList{}
	tree := parser.Parse(file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := types.Check(tree, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	mod := irbuild.Build(tree, info, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	analysis.Run(mod)
	regs := regions.Analyze(mod, file)
	instr := instrument.Build(regs)
	p := Compile(mod, regs, instr, absint.Analyze(mod))
	if err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return &compiled{mod: mod, regs: regs, instr: instr, prog: p}
}

func (c *compiled) config(mode interp.Mode, out io.Writer) interp.Config {
	return interp.Config{Mode: mode, Out: out, Prog: c.regs, Instr: c.instr}
}

var testPrograms = map[string]string{
	"arith": `
void main() {
	int s = 0;
	for (int i = 0; i < 100; i++) {
		s = s + i * 3 % 7 - i / 5;
	}
	print(s);
}`,
	"arrays": `
int a[64];
float b[64];
void main() {
	for (int i = 0; i < 64; i++) {
		a[i] = i * i;
		b[i] = 1.5;
	}
	int s = 0;
	for (int i = 1; i < 64; i++) {
		s = s + a[i] - a[i-1];
		b[i] = b[i-1] * 0.5 + 1.0;
	}
	print(s);
	print(b[63]);
}`,
	"branches": `
void main() {
	int hits = 0;
	for (int i = 0; i <= 63; i++) {
		if (i == 0) { hits = hits + 1; }
		if (i == 63) { hits = hits + 1; }
		if (i < 32) { hits = hits + 2; } else { hits = hits + 3; }
		if (i >= 62) { hits = hits + 1; }
	}
	print(hits);
}`,
	"empty-blocks": `
void main() {
	int s = 7;
	if (s > 0) {
	}
	if (s < 0) {
	} else {
		s = s + 1;
	}
	for (int i = 0; i < 4; i++) {
	}
	print(s);
}`,
	"calls": `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
void main() {
	print(fib(12));
	int local[8];
	for (int i = 0; i < 8; i++) { local[i] = i; }
	print(local[7]);
}`,
	"floats": `
float v[32];
void main() {
	srand(11);
	for (int i = 0; i < 32; i++) {
		v[i] = frand() + 0.25;
	}
	float s = 0.0;
	for (int i = 0; i < 32; i++) {
		s = s + sqrt(v[i]) * min(v[i], 0.5);
	}
	print(s);
	print(rand() % 1000);
}`,
	"matrix": `
int m[8][8];
void main() {
	for (int i = 0; i < 8; i++) {
		for (int j = 0; j < 8; j++) {
			m[i][j] = i * 8 + j;
		}
	}
	int d = 0;
	for (int i = 0; i < 8; i++) { d = d + m[i][i]; }
	print(d);
}`,
}

var allModes = []interp.Mode{interp.Plain, interp.Gprof, interp.HCPA, interp.Probe}

// TestEngineEquivalence runs every test program under all four modes on
// both engines and demands identical output, counters, gprof entries,
// profiles, and depth histograms.
func TestEngineEquivalence(t *testing.T) {
	for name, src := range testPrograms {
		t.Run(name, func(t *testing.T) {
			c := compileKr(t, src)
			for _, mode := range allModes {
				var vout, tout strings.Builder
				vres, verr := Run(c.prog, c.config(mode, &vout))
				tres, terr := interp.Run(c.mod, c.config(mode, &tout))
				if verr != nil || terr != nil {
					t.Fatalf("mode %v: vm err %v, tree err %v", mode, verr, terr)
				}
				if vout.String() != tout.String() {
					t.Errorf("mode %v: output diverged\n--- tree ---\n%s--- vm ---\n%s", mode, tout.String(), vout.String())
				}
				if vres.Work != tres.Work || vres.Steps != tres.Steps {
					t.Errorf("mode %v: vm work/steps %d/%d, tree %d/%d", mode, vres.Work, vres.Steps, tres.Work, tres.Steps)
				}
				if !reflect.DeepEqual(vres.Gprof, tres.Gprof) {
					t.Errorf("mode %v: gprof entries diverged", mode)
				}
				if !reflect.DeepEqual(vres.DepthWork, tres.DepthWork) || vres.MaxRegionDepth != tres.MaxRegionDepth {
					t.Errorf("mode %v: depth histograms diverged", mode)
				}
				if mode == interp.HCPA {
					if vres.ShadowPages != tres.ShadowPages || vres.ShadowWrites != tres.ShadowWrites {
						t.Errorf("HCPA: vm pages/writes %d/%d, tree %d/%d",
							vres.ShadowPages, vres.ShadowWrites, tres.ShadowPages, tres.ShadowWrites)
					}
					if vres.Profile.TotalWork() != tres.Profile.TotalWork() {
						t.Errorf("HCPA: vm profile TotalWork %d, tree %d",
							vres.Profile.TotalWork(), tres.Profile.TotalWork())
					}
				}
			}
		})
	}
}

// countOps tallies every opcode across a program's bytecode.
func countOps(p *Program) map[opcode]int {
	n := make(map[opcode]int)
	for _, fc := range p.Funcs {
		for _, ins := range fc.Code {
			n[ins.Op]++
		}
	}
	return n
}

// TestSuperinstructions checks that the compiler actually fuses the hot
// pairs it advertises: compare-feeding-branch and 1-D indexed load/store.
func TestSuperinstructions(t *testing.T) {
	// Fused forms count whether or not absint proved the access in
	// bounds (checked and unchecked variants are the same fusion).
	c := compileKr(t, testPrograms["arrays"])
	ops := countOps(c.prog)
	if ops[opBrCmpI] == 0 {
		t.Errorf("no fused int compare-branch in loop-heavy program; ops: %v", ops)
	}
	if ops[opLdIdxI]+ops[opLdIdxF]+ops[opLdIdxIU]+ops[opLdIdxFU] == 0 {
		t.Errorf("no fused indexed load; ops: %v", ops)
	}
	if ops[opStIdx]+ops[opStIdxU] == 0 {
		t.Errorf("no fused indexed store; ops: %v", ops)
	}

	// A 2-D access chain collapses into one dispatch per load/store.
	m := compileKr(t, testPrograms["matrix"])
	mops := countOps(m.prog)
	if mops[opLdIdx2I]+mops[opLdIdx2IU] == 0 {
		t.Errorf("no fused 2-D indexed load in matrix program; ops: %v", mops)
	}
	if mops[opStIdx2]+mops[opStIdx2U] == 0 {
		t.Errorf("no fused 2-D indexed store in matrix program; ops: %v", mops)
	}
	if mops[opView]+mops[opViewU] != 0 {
		t.Errorf("matrix program retains %d views after 2-D fusion; ops: %v", mops[opView]+mops[opViewU], mops)
	}

	// A rank-3 chain collapses into the N-ary fused forms.
	cube := compileKr(t, `
int c[4][4][4];
void main() {
	for (int i = 0; i < 4; i++) {
		for (int j = 0; j < 4; j++) {
			for (int k = 0; k < 4; k++) { c[i][j][k] = i + j + k; }
		}
	}
	print(c[3][2][1]);
}`)
	cops := countOps(cube.prog)
	if cops[opStIdxN]+cops[opStIdxNU] == 0 || cops[opLdIdxNI]+cops[opLdIdxNIU] == 0 {
		t.Errorf("rank-3 program did not fuse its full chains; ops: %v", cops)
	}
	if cops[opView]+cops[opViewU] != 0 {
		t.Errorf("rank-3 program retains %d views after N-ary fusion; ops: %v", cops[opView]+cops[opViewU], cops)
	}

	// A compound assignment reuses one cell view for both the load and the
	// store — multi-use views must NOT fuse, and must survive as opView.
	comp := compileKr(t, `
int m[8][8];
void main() {
	for (int i = 0; i < 8; i++) {
		for (int j = 0; j < 8; j++) { m[i][j] += i; }
	}
	print(m[7][7]);
}`)
	pops := countOps(comp.prog)
	if pops[opView]+pops[opViewU] == 0 {
		t.Errorf("compound assignment lost its shared cell view; ops: %v", pops)
	}
}

// TestBatchTemplates checks that call-free pure blocks get HCPA dependence
// templates (the batched StepBlock path) while call-containing blocks do
// not.
func TestBatchTemplates(t *testing.T) {
	c := compileKr(t, testPrograms["arrays"])
	var withTpl int
	for _, fc := range c.prog.Funcs {
		for _, b := range fc.Blocks {
			if b.Tpl != nil {
				withTpl++
			}
		}
	}
	if withTpl == 0 {
		t.Error("no block in the arrays program earned a batch template")
	}

	calls := compileKr(t, testPrograms["calls"])
	for _, fc := range calls.prog.Funcs {
		for _, b := range fc.Blocks {
			if !b.NeedsSlow {
				continue
			}
			if b.Tpl != nil {
				t.Errorf("func %s: NeedsSlow block has a template", fc.F.Name)
			}
			if b.Exact {
				if b.Start < 0 || b.End < b.Start {
					t.Errorf("func %s: exact block without bytecode [%d,%d)", fc.F.Name, b.Start, b.End)
				}
			} else if b.Start != -1 || b.End != -1 {
				t.Errorf("func %s: non-exact NeedsSlow block has bytecode [%d,%d)", fc.F.Name, b.Start, b.End)
			}
		}
	}
}

// TestBudgetPrefix sweeps the instruction budget across both engines,
// including both sides of the 2^14 liveness-poll boundary: the stop must
// be an exact prefix — same error, same step counter — regardless of
// engine.
func TestBudgetPrefix(t *testing.T) {
	c := compileKr(t, testPrograms["arith"])
	budgets := []uint64{1, 2, 5, 17, 100, 999,
		limits.LiveCheckInterval - 1, limits.LiveCheckInterval, limits.LiveCheckInterval + 1}
	for _, mode := range []interp.Mode{interp.Plain, interp.HCPA} {
		for _, b := range budgets {
			vcfg := c.config(mode, io.Discard)
			vcfg.MaxSteps = b
			tcfg := c.config(mode, io.Discard)
			tcfg.MaxSteps = b
			vres, verr := Run(c.prog, vcfg)
			tres, terr := interp.Run(c.mod, tcfg)
			if (verr == nil) != (terr == nil) {
				t.Fatalf("mode %v budget %d: vm err %v, tree err %v", mode, b, verr, terr)
			}
			if verr != nil {
				if !errors.Is(verr, limits.ErrBudgetExceeded) || !errors.Is(terr, limits.ErrBudgetExceeded) {
					t.Fatalf("mode %v budget %d: wrong error kind: vm %v, tree %v", mode, b, verr, terr)
				}
				if verr.Error() != terr.Error() {
					t.Errorf("mode %v budget %d: error text diverged:\nvm:   %v\ntree: %v", mode, b, verr, terr)
				}
				if vres.Steps != tres.Steps {
					t.Errorf("mode %v budget %d: partial steps diverged: vm %d, tree %d", mode, b, vres.Steps, tres.Steps)
				}
			}
		}
	}
}

// TestHeapCapPrefix stops both engines on the simulated-heap cap and
// demands identical errors and step counters.
func TestHeapCapPrefix(t *testing.T) {
	src := `
void grow(int n) {
	float big[4096];
	big[0] = n;
	if (n > 0) { grow(n - 1); }
}
void main() {
	grow(64);
	print(1);
}`
	c := compileKr(t, src)
	for _, cap := range []uint64{4096, 8192, 100_000} {
		vcfg := c.config(interp.Plain, io.Discard)
		vcfg.MaxHeapWords = cap
		tcfg := c.config(interp.Plain, io.Discard)
		tcfg.MaxHeapWords = cap
		vres, verr := Run(c.prog, vcfg)
		tres, terr := interp.Run(c.mod, tcfg)
		if (verr == nil) != (terr == nil) {
			t.Fatalf("cap %d: vm err %v, tree err %v", cap, verr, terr)
		}
		if verr == nil {
			t.Fatalf("cap %d: expected heap-cap stop, both engines ran clean", cap)
		}
		if !errors.Is(verr, limits.ErrMemCap) || !errors.Is(terr, limits.ErrMemCap) {
			t.Fatalf("cap %d: wrong error kind: vm %v, tree %v", cap, verr, terr)
		}
		if verr.Error() != terr.Error() {
			t.Errorf("cap %d: error text diverged:\nvm:   %v\ntree: %v", cap, verr, terr)
		}
		if vres.Steps != tres.Steps {
			t.Errorf("cap %d: partial steps diverged: vm %d, tree %d", cap, vres.Steps, tres.Steps)
		}
	}
}

// TestRuntimeErrorEquivalence checks that runtime faults (division by
// zero, out-of-range subscripts) carry the same message through both
// engines.
func TestRuntimeErrorEquivalence(t *testing.T) {
	for name, src := range map[string]string{
		"div-zero": `
void main() {
	int z = 0;
	for (int i = 0; i < 10; i++) { z = z + i; }
	print(100 / (z - 45));
}`,
		"oob": `
int a[8];
void main() {
	for (int i = 0; i <= 8; i++) { a[i] = i; }
	print(a[0]);
}`,
	} {
		t.Run(name, func(t *testing.T) {
			c := compileKr(t, src)
			_, verr := Run(c.prog, c.config(interp.Plain, io.Discard))
			_, terr := interp.Run(c.mod, c.config(interp.Plain, io.Discard))
			if verr == nil || terr == nil {
				t.Fatalf("expected runtime errors, got vm %v, tree %v", verr, terr)
			}
			if verr.Error() != terr.Error() {
				t.Errorf("error text diverged:\nvm:   %v\ntree: %v", verr, terr)
			}
		})
	}
}

// TestVerifyRejectsCorruption corrupts compiled bytecode in targeted ways
// and checks the verifier catches each one.
func TestVerifyRejectsCorruption(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(fc *FuncCode) bool // returns false if not applicable
	}{
		{"dst-out-of-range", func(fc *FuncCode) bool {
			for i := range fc.Code {
				if fc.Code[i].Op == opAddI || fc.Code[i].Op == opMulI {
					fc.Code[i].Dst = int32(fc.NumRegs) + 5
					return true
				}
			}
			return false
		}},
		{"operand-out-of-range", func(fc *FuncCode) bool {
			for i := range fc.Code {
				if fc.Code[i].Op == opAddI || fc.Code[i].Op == opMulI {
					fc.Code[i].A = -3
					return true
				}
			}
			return false
		}},
		{"edge-target-out-of-range", func(fc *FuncCode) bool {
			if len(fc.Edges) == 0 {
				return false
			}
			fc.Edges[0].Target = int32(len(fc.Blocks) + 9)
			return true
		}},
		{"terminator-mid-block", func(fc *FuncCode) bool {
			for bi := range fc.Blocks {
				b := &fc.Blocks[bi]
				if b.NeedsSlow || b.End-b.Start < 2 {
					continue
				}
				fc.Code[b.Start] = Ins{Op: opJump}
				return true
			}
			return false
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			c := compileKr(t, testPrograms["arith"])
			var applied bool
			for _, fc := range c.prog.Funcs {
				if tc.mut(fc) {
					applied = true
					break
				}
			}
			if !applied {
				t.Skip("corruption not applicable to this program")
			}
			if err := Verify(c.prog); err == nil {
				t.Error("Verify accepted corrupted bytecode")
			}
		})
	}
}

// TestDeterminism: two VM runs of an RNG-using program must agree exactly
// (the VM carries the interpreter's xorshift, not a different stream).
func TestDeterminism(t *testing.T) {
	c := compileKr(t, testPrograms["floats"])
	var o1, o2 strings.Builder
	r1, err1 := Run(c.prog, c.config(interp.Plain, &o1))
	r2, err2 := Run(c.prog, c.config(interp.Plain, &o2))
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if o1.String() != o2.String() || r1.Work != r2.Work || r1.Steps != r2.Steps {
		t.Error("two VM runs diverged")
	}
}

// compileKrFacts is compileKr with caller-controlled absint facts, so a
// test can compare the fact-driven build against a facts-free build of
// the same module.
func compileKrFacts(t testing.TB, src string, withFacts bool) *compiled {
	t.Helper()
	file := source.NewFile("test.kr", src)
	errs := &source.ErrorList{}
	tree := parser.Parse(file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := types.Check(tree, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	mod := irbuild.Build(tree, info, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	analysis.Run(mod)
	regs := regions.Analyze(mod, file)
	instr := instrument.Build(regs)
	var facts *absint.Facts
	if withFacts {
		facts = absint.Analyze(mod)
	}
	p := Compile(mod, regs, instr, facts)
	if err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return &compiled{mod: mod, regs: regs, instr: instr, prog: p}
}

// TestUncheckedEmission pins the bounds-check-elimination contract: a
// program whose accesses and divisors are all provably safe compiles to
// unchecked opcodes when absint facts are supplied, and to zero unchecked
// opcodes when they are withheld (nil facts = compile as if -absint=off).
// Both builds must pass structural verification, and the unchecked build
// must not retain any checked indexed forms for the proven accesses.
func TestUncheckedEmission(t *testing.T) {
	src := `
int a[10];
int m[4][4];
void main() {
	for (int i = 0; i < 10; i++) {
		a[i] = i * 3;
	}
	for (int i = 0; i < 4; i++) {
		for (int j = 0; j < 4; j++) {
			m[i][j] = a[i + j] / (j + 1);
		}
	}
	print(a[9] + m[3][3]);
}`
	unchecked := []opcode{
		opViewU, opLdIdxIU, opLdIdxFU, opStIdxU,
		opLdIdx2IU, opLdIdx2FU, opStIdx2U,
		opLdIdxNIU, opLdIdxNFU, opStIdxNU,
		opDivIU, opRemIU,
	}
	sum := func(ops map[opcode]int, set []opcode) int {
		n := 0
		for _, op := range set {
			n += ops[op]
		}
		return n
	}

	with := countOps(compileKrFacts(t, src, true).prog)
	without := countOps(compileKrFacts(t, src, false).prog)

	if n := sum(without, unchecked); n != 0 {
		t.Errorf("facts-free build emitted %d unchecked ops; ops: %v", n, without)
	}
	if sum(with, unchecked) == 0 {
		t.Errorf("fact-driven build emitted no unchecked ops for fully proven program; ops: %v", with)
	}
	// Every proven access family should have flipped: the fact-driven
	// build keeps no checked 1-D/2-D indexed ops and no checked div.
	for _, pair := range []struct {
		name    string
		checked []opcode
		flipped []opcode
	}{
		{"1-D store", []opcode{opStIdx}, []opcode{opStIdxU}},
		{"1-D load", []opcode{opLdIdxI, opLdIdxF}, []opcode{opLdIdxIU, opLdIdxFU}},
		{"2-D store", []opcode{opStIdx2}, []opcode{opStIdx2U}},
		{"division", []opcode{opDivI}, []opcode{opDivIU}},
	} {
		if sum(with, pair.checked) != 0 {
			t.Errorf("%s: fact-driven build retains checked ops; ops: %v", pair.name, with)
		}
		if sum(with, pair.flipped) == 0 && sum(without, pair.checked) > 0 {
			t.Errorf("%s: proven access did not use unchecked form; ops: %v", pair.name, with)
		}
	}

	// Both builds execute to the same output.
	var outA, outB strings.Builder
	c1 := compileKrFacts(t, src, true)
	c2 := compileKrFacts(t, src, false)
	if _, err := Run(c1.prog, c1.config(interp.Plain, &outA)); err != nil {
		t.Fatalf("fact-driven run: %v", err)
	}
	if _, err := Run(c2.prog, c2.config(interp.Plain, &outB)); err != nil {
		t.Fatalf("facts-free run: %v", err)
	}
	if outA.String() != outB.String() {
		t.Errorf("output diverged:\nwith facts: %q\nwithout:    %q", outA.String(), outB.String())
	}
}
