package bytecode

import (
	"context"
	"fmt"
	"io"
	"math"

	"kremlin/internal/ast"
	"kremlin/internal/interp"
	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/limits"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/shadow"
)

// machine is one VM execution. Its observable state (step/work counters,
// heap layout, RNG, profiling structures) is field-for-field the reference
// interpreter's, so every counter and error matches bit-for-bit.
type machine struct {
	p     *Program
	cfg   interp.Config
	out   io.Writer
	steps uint64
	limit uint64
	ctx   context.Context

	heap     []uint64
	heapTop  uint64
	heapCap  uint64
	heapPeak uint64 // high-water mark, tracked for cache-skip budget fidelity

	rng uint64

	globalBase []uint64
	// globalVals are the prebuilt descriptor values opGlobal loads.
	globalVals []val

	work uint64

	gpSelf  []uint64
	gpTotal []uint64
	gpCount []int64
	gpStack []gpFrame

	probeDepth int
	probeMax   int
	probeMark  uint64
	depthWork  []uint64

	rt   *kremlib.Runtime
	prof *profile.Profile

	printedAny bool

	// regPool recycles register files across calls; phiScratch is the
	// parallel-copy buffer for edge phi moves; argScratch carries call
	// arguments (safe to share across nested calls: the callee copies
	// them into its registers before executing any instruction). All
	// three keep the steady-state dispatch loop allocation-free.
	regPool    [][]val
	phiScratch []val
	argScratch []val

	// dimArena backs every arr's dimension vector (see arr). Globals'
	// entries sit at the bottom for the machine's lifetime; runtime
	// allocations stack above them and are trimmed at call exit.
	dimArena []int64
}

type gpFrame struct {
	regionID  int
	entryWork uint64
	childWork uint64
}

// Run executes p.Mod.Main() under cfg on the bytecode engine. The
// contract — result fields, error types, partial results on limit
// failures — is identical to interp.Run.
func Run(p *Program, cfg interp.Config) (*interp.Result, error) {
	m := &machine{p: p, cfg: cfg, out: cfg.Out, rng: 0x9E3779B97F4A7C15}
	m.limit = cfg.MaxSteps
	if m.limit == 0 {
		m.limit = limits.DefaultMaxSteps
	}
	m.ctx = cfg.Ctx
	m.heapCap = cfg.MaxHeapWords
	if cfg.Mode != interp.Plain && cfg.Prog == nil {
		return nil, fmt.Errorf("bytecode: %v mode requires region info", cfg.Mode)
	}
	if cfg.Mode == interp.HCPA {
		m.prof = profile.New()
		m.rt = kremlib.NewRuntime(m.prof, cfg.Opts)
		if cfg.Cache != nil {
			cfg.Cache.Bind(m.prof, m.rt)
		}
	} else {
		m.cfg.Cache = nil
	}
	if cfg.Mode == interp.Gprof {
		n := len(cfg.Prog.Regions)
		m.gpSelf = make([]uint64, n)
		m.gpTotal = make([]uint64, n)
		m.gpCount = make([]int64, n)
	}

	if err := m.allocGlobals(); err != nil {
		return nil, err
	}

	main := p.ByFunc[p.Mod.Main()]
	if main == nil {
		return nil, fmt.Errorf("bytecode: no main function")
	}
	_, _, err := m.call(main, nil, nil, nil)
	if err != nil {
		if limits.IsLimit(err) {
			return m.partialResult(), err
		}
		return nil, err
	}

	res := &interp.Result{Steps: m.steps}
	switch cfg.Mode {
	case interp.HCPA:
		res.Work = m.rt.TotalWork()
		res.Profile = m.prof
		res.ShadowPages = m.rt.Mem().NumPages()
		res.ShadowWrites = m.rt.Mem().Writes
		res.CarriedDeps = m.rt.CarriedDeps()
	case interp.Probe:
		m.probeFlush()
		res.Work = m.work
		res.DepthWork = m.depthWork
		res.MaxRegionDepth = m.probeMax
	case interp.Gprof:
		res.Work = m.work
		for id := range m.gpTotal {
			if m.gpCount[id] == 0 {
				continue
			}
			res.Gprof = append(res.Gprof, interp.GprofEntry{
				RegionID: id, Total: m.gpTotal[id], Self: m.gpSelf[id], Count: m.gpCount[id],
			})
		}
	default:
		res.Work = m.work
	}
	return res, nil
}

func (m *machine) allocGlobals() error {
	m.globalBase = make([]uint64, len(m.p.Mod.Globals))
	m.globalVals = make([]val, len(m.p.Mod.Globals))
	for i, g := range m.p.Mod.Globals {
		if g.IsArray() {
			total := int64(1)
			for _, d := range g.Dims {
				total *= d
			}
			base, err := m.alloc(total)
			if err != nil {
				return err
			}
			m.globalBase[i] = base
			m.globalVals[i] = val{a: arr{base: base, doff: m.pushDims(g.Dims), rank: int16(len(g.Dims)), elem: uint8(g.Elem)}}
			continue
		}
		addr, err := m.alloc(1)
		if err != nil {
			return err
		}
		m.globalBase[i] = addr
		m.globalVals[i] = val{a: arr{base: addr, doff: m.pushDims(g.Dims), rank: int16(len(g.Dims)), elem: uint8(g.Elem)}}
		if g.Init != nil {
			switch c := g.Init.(type) {
			case *ir.ConstInt:
				m.heap[addr-interp.HeapBase] = uint64(c.V)
			case *ir.ConstFloat:
				m.heap[addr-interp.HeapBase] = math.Float64bits(c.V)
			case *ir.ConstBool:
				if c.V {
					m.heap[addr-interp.HeapBase] = 1
				}
			}
		}
	}
	return nil
}

// pushDims appends a dimension vector to the arena and returns its offset.
func (m *machine) pushDims(dims []int64) int32 {
	doff := int32(len(m.dimArena))
	m.dimArena = append(m.dimArena, dims...)
	return doff
}

func (m *machine) alloc(n int64) (uint64, error) {
	base := interp.HeapBase + m.heapTop
	if m.heapCap > 0 && m.heapTop+uint64(n) > m.heapCap {
		return 0, limits.MemCap(m.steps, 0,
			"simulated heap cap exceeded (%d words requested, %d in use, cap %d)",
			n, m.heapTop, m.heapCap)
	}
	m.heapTop += uint64(n)
	if m.heapTop > m.heapPeak {
		m.heapPeak = m.heapTop
	}
	need := int(m.heapTop)
	if need > len(m.heap) {
		grown := make([]uint64, need*2)
		copy(grown, m.heap)
		m.heap = grown
	} else {
		for i := base - interp.HeapBase; i < base-interp.HeapBase+uint64(n); i++ {
			m.heap[i] = 0
		}
	}
	return base, nil
}

func (m *machine) partialResult() *interp.Result {
	res := &interp.Result{Steps: m.steps, Work: m.work}
	switch m.cfg.Mode {
	case interp.HCPA:
		if m.rt != nil {
			res.Work = m.rt.TotalWork()
			res.ShadowPages = m.rt.Mem().NumPages()
			res.ShadowWrites = m.rt.Mem().Writes
		}
	case interp.Gprof:
		for id := range m.gpTotal {
			if m.gpCount[id] == 0 {
				continue
			}
			res.Gprof = append(res.Gprof, interp.GprofEntry{
				RegionID: id, Total: m.gpTotal[id], Self: m.gpSelf[id], Count: m.gpCount[id],
			})
		}
	}
	return res
}

func (m *machine) checkLive() error {
	if m.ctx != nil {
		if m.ctx.Err() != nil {
			return limits.Cancelled(m.steps)
		}
	}
	if m.rt != nil {
		if err := m.rt.CheckLimits(m.steps); err != nil {
			return err
		}
	}
	return nil
}

func (m *machine) probeFlush() {
	for m.probeDepth >= len(m.depthWork) {
		m.depthWork = append(m.depthWork, 0)
	}
	m.depthWork[m.probeDepth] += m.work - m.probeMark
	m.probeMark = m.work
}

func (m *machine) regionEnter(r *regions.Region) {
	switch m.cfg.Mode {
	case interp.HCPA:
		m.rt.EnterRegion(r)
	case interp.Gprof:
		m.gpStack = append(m.gpStack, gpFrame{regionID: r.ID, entryWork: m.work})
		m.gpCount[r.ID]++
	case interp.Probe:
		m.probeFlush()
		m.probeDepth++
		if m.probeDepth > m.probeMax {
			m.probeMax = m.probeDepth
		}
	}
}

func (m *machine) regionExit() {
	switch m.cfg.Mode {
	case interp.HCPA:
		m.rt.ExitRegion()
	case interp.Gprof:
		top := m.gpStack[len(m.gpStack)-1]
		m.gpStack = m.gpStack[:len(m.gpStack)-1]
		total := m.work - top.entryWork
		m.gpTotal[top.regionID] += total
		m.gpSelf[top.regionID] += total - top.childWork
		if n := len(m.gpStack); n > 0 {
			m.gpStack[n-1].childWork += total
		}
	case interp.Probe:
		m.probeFlush()
		m.probeDepth--
	}
}

// fireEdge replays the edge's precompiled region events in the reference
// order: exits, iterate (exit+enter), enters.
func (m *machine) fireEdge(e *Edge) {
	for i := int32(0); i < e.NExit; i++ {
		m.regionExit()
	}
	if e.Iterate != nil {
		m.regionExit()
		m.regionEnter(e.Iterate)
	}
	for _, r := range e.Enter {
		m.regionEnter(r)
	}
}

func (m *machine) errAt(pos int, format string, args ...interface{}) error {
	return &interp.RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// idx2 resolves the heap cell of a fused rank-2 access A[B][C], checking
// each level exactly as the two reference views would: non-array, then
// bounds, per level. Both views of a fused chain share one source
// position, so a single Pos serves every error.
func idx2(m *machine, dims []int64, regs []val, ins *Ins) (uint64, error) {
	a := regs[ins.A].a
	i := regs[ins.B].i
	if a.rank == 0 {
		return 0, m.errAt(int(ins.Pos), "index of non-array value")
	}
	if i < 0 || i >= dims[a.doff] {
		return 0, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", i, dims[a.doff])
	}
	if a.rank == 1 {
		return 0, m.errAt(int(ins.Pos), "index of non-array value")
	}
	d1 := dims[a.doff+1]
	j := regs[ins.C].i
	if j < 0 || j >= d1 {
		return 0, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", j, d1)
	}
	return a.base + uint64(i*d1+j) - interp.HeapBase, nil
}

// idxN resolves a fused rank-3+ access: the ins.C index registers at
// fc.IdxRegs[ins.B:] each consume one level, Horner-style, with the
// reference engine's level-by-level checks (non-array, then bounds).
func idxN(m *machine, dims []int64, fc *FuncCode, regs []val, ins *Ins) (uint64, error) {
	a := regs[ins.A].a
	var off int64
	for l, r := range fc.IdxRegs[ins.B : ins.B+ins.C] {
		if l >= int(a.rank) {
			return 0, m.errAt(int(ins.Pos), "index of non-array value")
		}
		d := dims[a.doff+int32(l)]
		idx := regs[r].i
		if idx < 0 || idx >= d {
			return 0, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", idx, d)
		}
		off = off*d + idx
	}
	return a.base + uint64(off) - interp.HeapBase, nil
}

// idxNU resolves a fused rank-3+ access whose every level absint proved
// in bounds: the Horner walk runs with no rank or bounds checks.
func idxNU(dims []int64, fc *FuncCode, regs []val, ins *Ins) uint64 {
	a := regs[ins.A].a
	var off int64
	for l, r := range fc.IdxRegs[ins.B : ins.B+ins.C] {
		off = off*dims[a.doff+int32(l)] + regs[r].i
	}
	return a.base + uint64(off) - interp.HeapBase
}

func (m *machine) printPiece(s string) {
	if m.out == nil {
		return
	}
	if m.printedAny {
		fmt.Fprint(m.out, " ")
	}
	fmt.Fprint(m.out, s)
	m.printedAny = true
}

func (m *machine) nextRand() uint64 {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	return x
}

func (m *machine) getRegs(fc *FuncCode) []val {
	n := int(fc.NumRegs)
	if k := len(m.regPool); k > 0 {
		r := m.regPool[k-1]
		m.regPool = m.regPool[:k-1]
		if cap(r) >= n {
			r = r[:n]
			clear(r[:fc.ConstBase])
			copy(r[fc.ConstBase:], fc.Consts)
			for _, gs := range fc.GlobalSeeds {
				r[gs.Reg] = m.globalVals[gs.Global]
			}
			return r
		}
	}
	r := make([]val, n)
	copy(r[fc.ConstBase:], fc.Consts)
	for _, gs := range fc.GlobalSeeds {
		r[gs.Reg] = m.globalVals[gs.Global]
	}
	return r
}

func (m *machine) putRegs(r []val) {
	if len(m.regPool) < 64 {
		m.regPool = append(m.regPool, r)
	}
}

// call executes fc. The structure mirrors interp's call loop exactly, with
// per-block batching layered on: block entry handles control-stack
// maintenance and the incoming edge's phi moves/Steps, then the block body
// runs on the check-free fast path when its precomputed step count fits
// the budget, crosses no liveness-poll boundary, and (in HCPA) the block
// carries a batched template; otherwise it runs the per-instruction
// reference path.
func (m *machine) call(fc *FuncCode, args []val, argVecs []shadow.Vec, callerFS *kremlib.FrameState) (val, shadow.Vec, error) {
	regs := m.getRegs(fc)
	watermark := m.heapTop
	dimsMark := len(m.dimArena)

	profiled := m.cfg.Mode != interp.Plain
	var fs *kremlib.FrameState
	gpEntryDepth := len(m.gpStack)
	probeEntryDepth := m.probeDepth
	if m.cfg.Mode == interp.HCPA {
		fs = m.rt.NewFrame(fc.F, callerFS)
	}
	if profiled {
		m.regionEnter(fc.Root)
	}
	if fs != nil {
		for i, p := range fc.F.Params {
			if i < len(argVecs) && argVecs[i] != nil {
				fs.Regs.Set(p.ID, argVecs[i], len(argVecs[i]))
			}
		}
	}
	for i, p := range fc.F.Params {
		if i < len(args) {
			regs[p.ID] = args[i]
		}
	}

	var retVal val
	var retVec shadow.Vec
	var in *Edge
	bi := int32(0)
	for {
		b := &fc.Blocks[bi]
		if fs != nil {
			m.rt.AtBlock(fs, b.IR)
			m.rt.PopSameBranch(fs, b.IR)
		}
		if in != nil && in.NPhis > 0 {
			// Phi values are a parallel copy against the pre-state; the
			// shadow Steps run afterwards in phi order (they read only
			// shadow registers, so the split is exact). A single move
			// needs no scratch.
			moves := in.Moves
			if len(moves) == 1 {
				regs[moves[0].Dst] = regs[moves[0].Src]
			} else if len(moves) > 0 {
				if cap(m.phiScratch) < len(moves) {
					m.phiScratch = make([]val, len(moves))
				}
				tmp := m.phiScratch[:len(moves)]
				for k, mv := range moves {
					tmp[k] = regs[mv.Src]
				}
				for k, mv := range moves {
					regs[mv.Dst] = tmp[k]
				}
			}
			if fs != nil {
				for _, phi := range in.Phis {
					m.rt.Step(fs, phi, 0, int(in.PredIdx))
				}
			}
			m.steps += uint64(in.NPhis)
		}

		n := uint64(b.NSteps)
		var edge int32
		var returned bool
		if !b.NeedsSlow &&
			m.steps+n <= m.limit &&
			(m.steps+n)>>limits.LiveCheckShift == m.steps>>limits.LiveCheckShift &&
			(fs == nil || b.Tpl != nil) {
			m.steps += n
			if fs == nil {
				m.work += b.LatSum
			}
			var rv val
			var err error
			edge, rv, returned, err = m.execFast(fc, regs, b, m.cfg.Mode == interp.Plain)
			if err != nil {
				return val{}, nil, err
			}
			if returned {
				retVal = rv
			}
			if fs != nil {
				brVec := m.rt.StepBlock(fs, b.Tpl)
				if b.HasPush {
					m.rt.PushCtrl(fs, b.IR, b.PopAt, brVec)
				}
			}
		} else {
			var rv val
			var err error
			if b.Exact && fs == nil {
				edge, rv, returned, err = m.execExact(fc, regs, b)
			} else {
				edge, rv, returned, err = m.execSlow(fc, regs, b, fs)
			}
			if err != nil {
				return val{}, nil, err
			}
			if returned {
				retVal = rv
			}
		}

		if returned || edge < 0 {
			break
		}
		e := &fc.Edges[edge]
		if profiled {
			m.fireEdge(e)
		}
		in = e
		bi = e.Target
	}

	if fs != nil {
		retVec = fs.RetVec
	}
	if profiled {
		switch m.cfg.Mode {
		case interp.HCPA:
			m.rt.Unwind(fs.EntryDepth)
		case interp.Probe:
			for m.probeDepth > probeEntryDepth {
				m.regionExit()
			}
		default:
			for len(m.gpStack) > gpEntryDepth {
				m.regionExit()
			}
		}
	}
	if m.heapTop != watermark {
		if m.rt != nil {
			m.rt.Mem().Free(interp.HeapBase+watermark, m.heapTop-watermark)
		}
		m.heapTop = watermark
	}
	m.dimArena = m.dimArena[:dimsMark]
	if fs != nil {
		m.rt.ReleaseFrame(fs)
	}
	m.putRegs(regs)
	return retVal, retVec, nil
}

// cmpRes reproduces the interpreter's comparison semantics (including its
// NaN behavior, which derives Gt/Ge from !lt/!eq rather than direct
// operators).
func cmpRes(lt, eq bool, k ir.BinKind) bool {
	switch k {
	case ir.BinEq:
		return eq
	case ir.BinNe:
		return !eq
	case ir.BinLt:
		return lt
	case ir.BinLe:
		return lt || eq
	case ir.BinGt:
		return !lt && !eq
	case ir.BinGe:
		return !lt
	}
	return false
}

// execFast runs block bytecode with no per-instruction checks and no
// profiling calls (step/work totals were batched by the caller; HCPA
// effects replay via StepBlock afterwards). It returns the taken edge
// index, or returned=true with the return value, or edge -1 when the
// block dangles (the function then ends, as in the reference engine).
//
// With chain set (plain mode only — no per-edge region events exist),
// taken edges whose target passes the same fast-path gate the caller
// would apply are followed without returning: phi moves, step/work
// accrual, and dispatch all stay inside this frame, so straight-line
// block sequences pay no per-block call overhead. The chain gate is
// strictly more conservative than the caller's (it spans the phi steps
// too), so any block it rejects simply takes the normal exit and the
// caller re-applies its exact gate.
func (m *machine) execFast(fc *FuncCode, regs []val, b *BBlock, chain bool) (int32, val, bool, error) {
	code := fc.Code
	heap := m.heap
	adims := m.dimArena
	pc := b.Start
	edge := int32(-1)
	for {
		ins := &code[pc]
		pc++
		switch ins.Op {
		case opEndBlk:
			// Dangling block: the function ends (mirrors interp's next == nil).
			return -1, val{}, false, nil
		case opAddI:
			regs[ins.Dst].i = regs[ins.A].i + regs[ins.B].i
		case opSubI:
			regs[ins.Dst].i = regs[ins.A].i - regs[ins.B].i
		case opMulI:
			regs[ins.Dst].i = regs[ins.A].i * regs[ins.B].i
		case opDivI:
			y := regs[ins.B].i
			if y == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "integer division by zero")
			}
			regs[ins.Dst].i = regs[ins.A].i / y
		case opRemI:
			y := regs[ins.B].i
			if y == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "integer modulo by zero")
			}
			regs[ins.Dst].i = regs[ins.A].i % y
		case opAndI:
			regs[ins.Dst].i = regs[ins.A].i & regs[ins.B].i
		case opOrI:
			regs[ins.Dst].i = regs[ins.A].i | regs[ins.B].i
		case opAddF:
			regs[ins.Dst].f = regs[ins.A].f + regs[ins.B].f
		case opSubF:
			regs[ins.Dst].f = regs[ins.A].f - regs[ins.B].f
		case opMulF:
			regs[ins.Dst].f = regs[ins.A].f * regs[ins.B].f
		case opDivF:
			regs[ins.Dst].f = regs[ins.A].f / regs[ins.B].f
		case opCmpI:
			x, y := regs[ins.A].i, regs[ins.B].i
			var r int64
			if cmpRes(x < y, x == y, ir.BinKind(ins.C)) {
				r = 1
			}
			regs[ins.Dst].i = r
		case opCmpF:
			x, y := regs[ins.A].f, regs[ins.B].f
			var r int64
			if cmpRes(x < y, x == y, ir.BinKind(ins.C)) {
				r = 1
			}
			regs[ins.Dst].i = r
		case opNegI:
			regs[ins.Dst].i = -regs[ins.A].i
		case opNegF:
			regs[ins.Dst].f = -regs[ins.A].f
		case opNot:
			regs[ins.Dst].i = 1 - regs[ins.A].i
		case opConvIF:
			regs[ins.Dst].f = float64(regs[ins.A].i)
		case opConvFI:
			regs[ins.Dst].i = int64(regs[ins.A].f)
		case opGlobal:
			// Globals are memory cells: only the descriptor is ever read,
			// so skip rewriting the scalar halves of the register.
			regs[ins.Dst].a = m.globalVals[ins.A].a
		case opView:
			a := regs[ins.A].a
			idx := regs[ins.B].i
			if a.rank == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index of non-array value")
			}
			if idx < 0 || idx >= adims[a.doff] {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", idx, adims[a.doff])
			}
			stride := int64(1)
			for k := a.doff + 1; k < a.doff+int32(a.rank); k++ {
				stride *= adims[k]
			}
			regs[ins.Dst].a = arr{base: a.base + uint64(idx*stride), doff: a.doff + 1, rank: a.rank - 1, elem: a.elem}
		case opLoadI:
			regs[ins.Dst].i = int64(heap[regs[ins.A].a.base-interp.HeapBase])
		case opLoadF:
			regs[ins.Dst].f = math.Float64frombits(heap[regs[ins.A].a.base-interp.HeapBase])
		case opStore:
			cell := regs[ins.A].a
			v := regs[ins.B]
			var bits uint64
			if cell.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[cell.base-interp.HeapBase] = bits
		case opBrCmpI:
			x, y := regs[ins.A].i, regs[ins.B].i
			if cmpRes(x < y, x == y, ir.BinKind(ins.C)) {
				edge = b.Edge0
			} else {
				edge = b.Edge1
			}
		case opBrCmpF:
			x, y := regs[ins.A].f, regs[ins.B].f
			if cmpRes(x < y, x == y, ir.BinKind(ins.C)) {
				edge = b.Edge0
			} else {
				edge = b.Edge1
			}
		case opIncCmpBrI:
			x := regs[ins.A].i + regs[ins.B].i
			regs[ins.Dst].i = x
			if cmpRes(x < regs[ins.C].i, x == regs[ins.C].i, ir.BinKind(ins.Pos)) {
				edge = b.Edge0
			} else {
				edge = b.Edge1
			}
		case opDecCmpBrI:
			x := regs[ins.A].i - regs[ins.B].i
			regs[ins.Dst].i = x
			if cmpRes(x < regs[ins.C].i, x == regs[ins.C].i, ir.BinKind(ins.Pos)) {
				edge = b.Edge0
			} else {
				edge = b.Edge1
			}
		case opLdIdxI:
			a := regs[ins.A].a
			idx := regs[ins.B].i
			if a.rank == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index of non-array value")
			}
			if idx < 0 || idx >= adims[a.doff] {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", idx, adims[a.doff])
			}
			regs[ins.Dst].i = int64(heap[a.base+uint64(idx)-interp.HeapBase])
		case opLdIdxF:
			a := regs[ins.A].a
			idx := regs[ins.B].i
			if a.rank == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index of non-array value")
			}
			if idx < 0 || idx >= adims[a.doff] {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", idx, adims[a.doff])
			}
			regs[ins.Dst].f = math.Float64frombits(heap[a.base+uint64(idx)-interp.HeapBase])
		case opStIdx:
			a := regs[ins.A].a
			idx := regs[ins.B].i
			if a.rank == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index of non-array value")
			}
			if idx < 0 || idx >= adims[a.doff] {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", idx, adims[a.doff])
			}
			v := regs[ins.C]
			var bits uint64
			if a.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[a.base+uint64(idx)-interp.HeapBase] = bits
		case opLdIdx2I:
			// In-bounds rank-2 access is inlined; idx2 is the cold path
			// that reproduces the reference engine's errors.
			a := regs[ins.A].a
			i, j := regs[ins.B].i, regs[ins.C].i
			if a.rank >= 2 {
				d1 := adims[a.doff+1]
				if uint64(i) < uint64(adims[a.doff]) && uint64(j) < uint64(d1) {
					regs[ins.Dst].i = int64(heap[a.base+uint64(i*d1+j)-interp.HeapBase])
					break
				}
			}
			cell, err := idx2(m, adims, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.Dst].i = int64(heap[cell])
		case opLdIdx2F:
			a := regs[ins.A].a
			i, j := regs[ins.B].i, regs[ins.C].i
			if a.rank >= 2 {
				d1 := adims[a.doff+1]
				if uint64(i) < uint64(adims[a.doff]) && uint64(j) < uint64(d1) {
					regs[ins.Dst].f = math.Float64frombits(heap[a.base+uint64(i*d1+j)-interp.HeapBase])
					break
				}
			}
			cell, err := idx2(m, adims, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.Dst].f = math.Float64frombits(heap[cell])
		case opStIdx2:
			a := regs[ins.A].a
			i, j := regs[ins.B].i, regs[ins.C].i
			if a.rank >= 2 {
				d1 := adims[a.doff+1]
				if uint64(i) < uint64(adims[a.doff]) && uint64(j) < uint64(d1) {
					v := regs[ins.Dst]
					var bits uint64
					if a.elem == uint8(ast.Float) {
						bits = math.Float64bits(v.f)
					} else {
						bits = uint64(v.i)
					}
					heap[a.base+uint64(i*d1+j)-interp.HeapBase] = bits
					break
				}
			}
			cell, err := idx2(m, adims, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			v := regs[ins.Dst]
			var bits uint64
			if a.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[cell] = bits
		case opLdIdxNI:
			cell, err := idxN(m, adims, fc, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.Dst].i = int64(heap[cell])
		case opLdIdxNF:
			cell, err := idxN(m, adims, fc, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.Dst].f = math.Float64frombits(heap[cell])
		case opStIdxN:
			cell, err := idxN(m, adims, fc, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			v := regs[ins.Dst]
			var bits uint64
			if regs[ins.A].a.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[cell] = bits
		case opDivIU:
			// Unchecked variants: absint proved the fault condition
			// impossible (divisor nonzero / every index level in bounds),
			// so the checks and their error paths are elided entirely.
			regs[ins.Dst].i = regs[ins.A].i / regs[ins.B].i
		case opRemIU:
			regs[ins.Dst].i = regs[ins.A].i % regs[ins.B].i
		case opViewU:
			a := regs[ins.A].a
			idx := regs[ins.B].i
			stride := int64(1)
			for k := a.doff + 1; k < a.doff+int32(a.rank); k++ {
				stride *= adims[k]
			}
			regs[ins.Dst].a = arr{base: a.base + uint64(idx*stride), doff: a.doff + 1, rank: a.rank - 1, elem: a.elem}
		case opLdIdxIU:
			a := regs[ins.A].a
			regs[ins.Dst].i = int64(heap[a.base+uint64(regs[ins.B].i)-interp.HeapBase])
		case opLdIdxFU:
			a := regs[ins.A].a
			regs[ins.Dst].f = math.Float64frombits(heap[a.base+uint64(regs[ins.B].i)-interp.HeapBase])
		case opStIdxU:
			a := regs[ins.A].a
			v := regs[ins.C]
			var bits uint64
			if a.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[a.base+uint64(regs[ins.B].i)-interp.HeapBase] = bits
		case opLdIdx2IU:
			a := regs[ins.A].a
			cell := a.base + uint64(regs[ins.B].i*adims[a.doff+1]+regs[ins.C].i) - interp.HeapBase
			regs[ins.Dst].i = int64(heap[cell])
		case opLdIdx2FU:
			a := regs[ins.A].a
			cell := a.base + uint64(regs[ins.B].i*adims[a.doff+1]+regs[ins.C].i) - interp.HeapBase
			regs[ins.Dst].f = math.Float64frombits(heap[cell])
		case opStIdx2U:
			a := regs[ins.A].a
			cell := a.base + uint64(regs[ins.B].i*adims[a.doff+1]+regs[ins.C].i) - interp.HeapBase
			v := regs[ins.Dst]
			var bits uint64
			if a.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[cell] = bits
		case opLdIdxNIU:
			regs[ins.Dst].i = int64(heap[idxNU(adims, fc, regs, ins)])
		case opLdIdxNFU:
			regs[ins.Dst].f = math.Float64frombits(heap[idxNU(adims, fc, regs, ins)])
		case opStIdxNU:
			cell := idxNU(adims, fc, regs, ins)
			v := regs[ins.Dst]
			var bits uint64
			if regs[ins.A].a.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			heap[cell] = bits
		case opSqrt:
			regs[ins.Dst].f = math.Sqrt(regs[ins.A].f)
		case opFabs:
			regs[ins.Dst].f = math.Abs(regs[ins.A].f)
		case opFloor:
			regs[ins.Dst].f = math.Floor(regs[ins.A].f)
		case opExp:
			regs[ins.Dst].f = math.Exp(regs[ins.A].f)
		case opLog:
			regs[ins.Dst].f = math.Log(regs[ins.A].f)
		case opSin:
			regs[ins.Dst].f = math.Sin(regs[ins.A].f)
		case opCos:
			regs[ins.Dst].f = math.Cos(regs[ins.A].f)
		case opPow:
			regs[ins.Dst].f = math.Pow(regs[ins.A].f, regs[ins.B].f)
		case opAbsI:
			x := regs[ins.A].i
			if x < 0 {
				x = -x
			}
			regs[ins.Dst].i = x
		case opMinI:
			x, y := regs[ins.A].i, regs[ins.B].i
			if y < x {
				x = y
			}
			regs[ins.Dst].i = x
		case opMaxI:
			x, y := regs[ins.A].i, regs[ins.B].i
			if x < y {
				x = y
			}
			regs[ins.Dst].i = x
		case opMinF:
			x, y := regs[ins.A].f, regs[ins.B].f
			if !(x < y) {
				x = y
			}
			regs[ins.Dst].f = x
		case opMaxF:
			x, y := regs[ins.A].f, regs[ins.B].f
			if x < y {
				x = y
			}
			regs[ins.Dst].f = x
		case opRand:
			regs[ins.Dst].i = int64(m.nextRand() >> 1)
		case opFrand:
			regs[ins.Dst].f = float64(m.nextRand()>>11) / float64(1<<53)
		case opSrand:
			m.rng = uint64(regs[ins.A].i)*2862933555777941757 + 3037000493
		case opDim:
			a := regs[ins.A].a
			k := regs[ins.B].i
			if k < 0 || k >= int64(a.rank) {
				return 0, val{}, false, m.errAt(int(ins.Pos), "dim index %d out of range", k)
			}
			regs[ins.Dst].i = adims[a.doff+int32(k)]
		case opPrintStr:
			m.printPiece(fc.Strs[ins.A])
		case opPrintValI:
			m.printPiece(fmt.Sprintf("%d", regs[ins.A].i))
		case opPrintValF:
			m.printPiece(fmt.Sprintf("%g", regs[ins.A].f))
		case opPrintValB:
			m.printPiece(fmt.Sprintf("%t", regs[ins.A].i != 0))
		case opPrintNl:
			if m.out != nil {
				fmt.Fprintln(m.out)
			}
			m.printedAny = false
		case opBr:
			if regs[ins.A].i != 0 {
				edge = b.Edge0
			} else {
				edge = b.Edge1
			}
		case opJump:
			edge = b.Edge0
		case opIncJmpI:
			regs[ins.Dst].i = regs[ins.A].i + regs[ins.B].i
			edge = b.Edge0
		case opDecJmpI:
			regs[ins.Dst].i = regs[ins.A].i - regs[ins.B].i
			edge = b.Edge0
		case opRetVal:
			return -1, regs[ins.A], true, nil
		case opRetVoid:
			return -1, val{}, true, nil
		}
		if edge < 0 {
			continue
		}
		if !chain {
			return edge, val{}, false, nil
		}
		e := &fc.Edges[edge]
		nb := &fc.Blocks[e.Target]
		n := uint64(e.NPhis) + uint64(nb.NSteps)
		if nb.NeedsSlow || m.steps+n > m.limit ||
			(m.steps+n)>>limits.LiveCheckShift != m.steps>>limits.LiveCheckShift {
			return edge, val{}, false, nil
		}
		if moves := e.Moves; len(moves) == 1 {
			regs[moves[0].Dst] = regs[moves[0].Src]
		} else if len(moves) > 0 {
			// Phi values are a parallel copy against the pre-state.
			if cap(m.phiScratch) < len(moves) {
				m.phiScratch = make([]val, len(moves))
			}
			tmp := m.phiScratch[:len(moves)]
			for k, mv := range moves {
				tmp[k] = regs[mv.Src]
			}
			for k, mv := range moves {
				regs[mv.Dst] = tmp[k]
			}
		}
		m.steps += n
		m.work += nb.LatSum
		b = nb
		pc = b.Start
		edge = -1
	}
}

// execExact runs an exact block's unfused bytecode with the reference
// engine's per-instruction accounting: every instruction pays the step
// increment, budget check, liveness poll, and work accrual in exactly
// internal/interp's order, so mid-block budget stops, heap-cap failures,
// and partial results stay bit-identical. It serves NeedsSlow blocks
// (calls, allocations) in non-HCPA modes, replacing execSlow's
// interface-heavy IR walk with register-indexed dispatch; HCPA keeps the
// reference walk because it needs per-IR shadow Steps. m.heap and
// m.dimArena are deliberately not cached in locals: opCall and opAlloc
// can grow or reallocate both.
func (m *machine) execExact(fc *FuncCode, regs []val, b *BBlock) (int32, val, bool, error) {
	code := fc.Code
	lat := fc.Lat
	for pc := b.Start; pc < b.End; pc++ {
		ins := &code[pc]
		m.steps++
		if m.steps > m.limit {
			return 0, val{}, false, limits.Budget(m.limit, m.steps)
		}
		if m.steps&limits.LiveCheckMask == 0 {
			if err := m.checkLive(); err != nil {
				return 0, val{}, false, err
			}
		}
		m.work += uint64(lat[pc])
		switch ins.Op {
		case opNop:
		case opAddI:
			regs[ins.Dst].i = regs[ins.A].i + regs[ins.B].i
		case opSubI:
			regs[ins.Dst].i = regs[ins.A].i - regs[ins.B].i
		case opMulI:
			regs[ins.Dst].i = regs[ins.A].i * regs[ins.B].i
		case opDivI:
			y := regs[ins.B].i
			if y == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "integer division by zero")
			}
			regs[ins.Dst].i = regs[ins.A].i / y
		case opRemI:
			y := regs[ins.B].i
			if y == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "integer modulo by zero")
			}
			regs[ins.Dst].i = regs[ins.A].i % y
		case opAndI:
			regs[ins.Dst].i = regs[ins.A].i & regs[ins.B].i
		case opOrI:
			regs[ins.Dst].i = regs[ins.A].i | regs[ins.B].i
		case opAddF:
			regs[ins.Dst].f = regs[ins.A].f + regs[ins.B].f
		case opSubF:
			regs[ins.Dst].f = regs[ins.A].f - regs[ins.B].f
		case opMulF:
			regs[ins.Dst].f = regs[ins.A].f * regs[ins.B].f
		case opDivF:
			regs[ins.Dst].f = regs[ins.A].f / regs[ins.B].f
		case opCmpI:
			x, y := regs[ins.A].i, regs[ins.B].i
			var r int64
			if cmpRes(x < y, x == y, ir.BinKind(ins.C)) {
				r = 1
			}
			regs[ins.Dst].i = r
		case opCmpF:
			x, y := regs[ins.A].f, regs[ins.B].f
			var r int64
			if cmpRes(x < y, x == y, ir.BinKind(ins.C)) {
				r = 1
			}
			regs[ins.Dst].i = r
		case opNegI:
			regs[ins.Dst].i = -regs[ins.A].i
		case opNegF:
			regs[ins.Dst].f = -regs[ins.A].f
		case opNot:
			regs[ins.Dst].i = 1 - regs[ins.A].i
		case opConvIF:
			regs[ins.Dst].f = float64(regs[ins.A].i)
		case opConvFI:
			regs[ins.Dst].i = int64(regs[ins.A].f)
		case opGlobal:
			regs[ins.Dst] = m.globalVals[ins.A]
		case opView:
			a := regs[ins.A].a
			idx := regs[ins.B].i
			if a.rank == 0 {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index of non-array value")
			}
			if idx < 0 || idx >= m.dimArena[a.doff] {
				return 0, val{}, false, m.errAt(int(ins.Pos), "index %d out of range [0,%d)", idx, m.dimArena[a.doff])
			}
			stride := int64(1)
			for k := a.doff + 1; k < a.doff+int32(a.rank); k++ {
				stride *= m.dimArena[k]
			}
			regs[ins.Dst].a = arr{base: a.base + uint64(idx*stride), doff: a.doff + 1, rank: a.rank - 1, elem: a.elem}
		case opLoadI:
			regs[ins.Dst].i = int64(m.heap[regs[ins.A].a.base-interp.HeapBase])
		case opLoadF:
			regs[ins.Dst].f = math.Float64frombits(m.heap[regs[ins.A].a.base-interp.HeapBase])
		case opStore:
			cell := regs[ins.A].a
			v := regs[ins.B]
			var bits uint64
			if cell.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			m.heap[cell.base-interp.HeapBase] = bits
		case opCall:
			if err := m.callOp(fc, regs, ins); err != nil {
				return 0, val{}, false, err
			}
		case opAlloc:
			v, err := m.allocOp(fc, regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.Dst] = v
		case opSqrt:
			regs[ins.Dst].f = math.Sqrt(regs[ins.A].f)
		case opFabs:
			regs[ins.Dst].f = math.Abs(regs[ins.A].f)
		case opFloor:
			regs[ins.Dst].f = math.Floor(regs[ins.A].f)
		case opExp:
			regs[ins.Dst].f = math.Exp(regs[ins.A].f)
		case opLog:
			regs[ins.Dst].f = math.Log(regs[ins.A].f)
		case opSin:
			regs[ins.Dst].f = math.Sin(regs[ins.A].f)
		case opCos:
			regs[ins.Dst].f = math.Cos(regs[ins.A].f)
		case opPow:
			regs[ins.Dst].f = math.Pow(regs[ins.A].f, regs[ins.B].f)
		case opAbsI:
			x := regs[ins.A].i
			if x < 0 {
				x = -x
			}
			regs[ins.Dst].i = x
		case opMinI:
			x, y := regs[ins.A].i, regs[ins.B].i
			if y < x {
				x = y
			}
			regs[ins.Dst].i = x
		case opMaxI:
			x, y := regs[ins.A].i, regs[ins.B].i
			if x < y {
				x = y
			}
			regs[ins.Dst].i = x
		case opMinF:
			x, y := regs[ins.A].f, regs[ins.B].f
			if !(x < y) {
				x = y
			}
			regs[ins.Dst].f = x
		case opMaxF:
			x, y := regs[ins.A].f, regs[ins.B].f
			if x < y {
				x = y
			}
			regs[ins.Dst].f = x
		case opRand:
			regs[ins.Dst].i = int64(m.nextRand() >> 1)
		case opFrand:
			regs[ins.Dst].f = float64(m.nextRand()>>11) / float64(1<<53)
		case opSrand:
			m.rng = uint64(regs[ins.A].i)*2862933555777941757 + 3037000493
		case opDim:
			a := regs[ins.A].a
			k := regs[ins.B].i
			if k < 0 || k >= int64(a.rank) {
				return 0, val{}, false, m.errAt(int(ins.Pos), "dim index %d out of range", k)
			}
			regs[ins.Dst].i = m.dimArena[a.doff+int32(k)]
		case opPrintStr:
			m.printPiece(fc.Strs[ins.A])
		case opPrintValI:
			m.printPiece(fmt.Sprintf("%d", regs[ins.A].i))
		case opPrintValF:
			m.printPiece(fmt.Sprintf("%g", regs[ins.A].f))
		case opPrintValB:
			m.printPiece(fmt.Sprintf("%t", regs[ins.A].i != 0))
		case opPrintNl:
			if m.out != nil {
				fmt.Fprintln(m.out)
			}
			m.printedAny = false
		case opBr:
			if regs[ins.A].i != 0 {
				return b.Edge0, val{}, false, nil
			}
			return b.Edge1, val{}, false, nil
		case opJump:
			return b.Edge0, val{}, false, nil
		case opRetVal:
			return -1, regs[ins.A], true, nil
		case opRetVoid:
			return -1, val{}, true, nil
		default:
			// Unreachable for verified code (exact blocks are unfused).
			return 0, val{}, false, m.errAt(int(ins.Pos), "unknown opcode %v", ins.Op)
		}
	}
	// Dangling block: the function ends (mirrors interp's next == nil).
	return -1, val{}, false, nil
}

// callOp is execExact's OpCall: argument registers come precompiled in
// IdxRegs, the callee by function index. The semantics — argument
// gathering order, result write — mirror doCall with fs == nil.
func (m *machine) callOp(fc *FuncCode, regs []val, ins *Ins) error {
	if cap(m.argScratch) < int(ins.C) {
		m.argScratch = make([]val, ins.C)
	}
	args := m.argScratch[:ins.C]
	for i, r := range fc.IdxRegs[ins.B : ins.B+ins.C] {
		args[i] = regs[r]
	}
	ret, _, err := m.call(m.p.Funcs[ins.A], args, nil, nil)
	if err != nil {
		return err
	}
	regs[ins.Dst] = ret
	return nil
}

// allocOp is execExact's OpAllocArray: same dimension validation order,
// error text, and heap-cap behavior as allocArray.
func (m *machine) allocOp(fc *FuncCode, regs []val, ins *Ins) (val, error) {
	doff := int32(len(m.dimArena))
	total := int64(1)
	for i, r := range fc.IdxRegs[ins.B : ins.B+ins.C] {
		d := regs[r].i
		if d <= 0 {
			m.dimArena = m.dimArena[:doff]
			return val{}, m.errAt(int(ins.Pos), "array dimension %d must be positive, got %d", i, d)
		}
		m.dimArena = append(m.dimArena, d)
		total *= d
		if total > interp.MaxArrayElems {
			m.dimArena = m.dimArena[:doff]
			return val{}, m.errAt(int(ins.Pos), "array too large (%d elements)", total)
		}
	}
	base, err := m.alloc(total)
	if err != nil {
		m.dimArena = m.dimArena[:doff]
		return val{}, err
	}
	return val{a: arr{base: base, doff: doff, rank: int16(ins.C), elem: uint8(ins.A)}}, nil
}
