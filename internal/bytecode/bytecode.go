// Package bytecode is Kremlin's second execution engine: a flat bytecode
// compiler plus dispatch-loop VM for the Kr IR, with block-batched
// instrumentation. The tree-walking interpreter (internal/interp) pays a
// per-IR-instruction price three times over — pointer-chasing dispatch,
// per-instruction budget/liveness checks, and a per-instruction KremLib
// Step call. This engine removes all three on the hot path:
//
//   - IR is lowered once into a contiguous []Ins per function. Operands
//     are resolved to register-file indices at compile time (constants are
//     materialized into the top of the register file at call entry, so an
//     operand fetch is a single slice index, never an interface switch),
//     and the hot compare-branch and index-load/store pairs are fused into
//     superinstructions.
//   - Instruction budget and liveness polling are enforced per basic
//     block: a block with n instructions runs check-free when steps+n
//     stays under the budget and does not cross a poll boundary
//     (limits.LiveCheckInterval); otherwise the block falls back to the
//     exact per-instruction reference path.
//   - HCPA bookkeeping is batched per block: pure blocks (no memory
//     traffic, calls, IO/RNG, or region boundaries) carry a precompiled
//     kremlib.BlockTemplate and issue one StepBlock instead of one Step
//     per instruction.
//
// The fallback ("slow") path is a per-instruction walk of the original IR
// block that mirrors internal/interp statement for statement, so every
// observable — output bytes, step and work counters, the full HCPA
// profile, error text and position, and partial results at budget/cap
// stops — is bit-identical between engines. The krfuzz differential
// oracle enforces this continuously.
package bytecode

import (
	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/regions"
)

// opcode enumerates VM instructions. Arithmetic is type-specialized at
// compile time (the IR is fully typed), so the VM never re-inspects types.
type opcode uint8

const (
	opNop opcode = iota

	// Integer/bool arithmetic and logic: Dst = A op B.
	opAddI
	opSubI
	opMulI
	opDivI // checks divide-by-zero (Pos)
	opRemI // checks modulo-by-zero (Pos)
	opAndI
	opOrI

	// Float arithmetic.
	opAddF
	opSubF
	opMulF
	opDivF

	// Comparisons: Dst = (A <C-kind> B), C is the ir.BinKind.
	opCmpI
	opCmpF

	// Unary: Dst = op A.
	opNegI
	opNegF
	opNot
	opConvIF // int -> float
	opConvFI // float -> int

	// Arrays and memory.
	opGlobal // Dst = global descriptor A (prebuilt val)
	opView   // Dst = A[B] sub-view (bounds-checked at Pos)
	opLoadI  // Dst = *A (0-dim cell), integer/bool element
	opLoadF  // Dst = *A, float element
	opStore  // *A = B (element kind read from the cell)

	// Superinstructions.
	opBrCmpI // branch on (A <C-kind> B), integer operands
	opBrCmpF // same, float operands
	// Loop-latch superinstructions: Dst = A + B (or A - B), then branch
	// on (Dst <kind> C) — a counted loop's entire back edge (increment,
	// compare, branch) in one dispatch. All integer and fault-free, so
	// the otherwise-unused Pos slot carries the comparison kind.
	opIncCmpBrI
	opDecCmpBrI
	// Jump-latch superinstructions: Dst = A + B (or A - B), then jump to
	// Edge0 — the common back-edge/accumulator tail "i = i + 1; jump"
	// in one dispatch. Integer and fault-free.
	opIncJmpI
	opDecJmpI
	opLdIdxI // Dst = A[B], fused 1-D view+load, integer/bool element
	opLdIdxF // Dst = A[B], float element
	opStIdx  // A[B] = C, fused 1-D view+store
	// Rank-2 chains (the NAS kernels' hot shape): both views plus the
	// load/store collapse into one dispatch. A is the rank-2 root array,
	// B/C the two indices; bounds are checked level by level in the
	// reference engine's order. For opStIdx2 the stored value rides in
	// Dst (a source operand there, never written).
	opLdIdx2I // Dst = A[B][C], integer/bool element
	opLdIdx2F // Dst = A[B][C], float element
	opStIdx2  // A[B][C] = Dst
	// Rank-3+ chains: the C index registers at FuncCode.IdxRegs[B:B+C]
	// resolve one level each against the rank-C array in A, Horner-style,
	// with the same level-by-level bounds checks. Dst is the result (loads)
	// or the stored value (opStIdxN, a source operand there).
	opLdIdxNI
	opLdIdxNF
	opStIdxN

	// Unchecked variants. The compiler emits these only when the abstract
	// interpreter (internal/absint) proved the access can never fault on
	// any execution reaching it: every view level's index is within its
	// dimension (which implies the operand has enough rank), or the
	// divisor is provably nonzero. The VM skips the corresponding checks
	// entirely. Because fused chains of proven views cannot fault, the
	// unchecked chain forms are additionally allowed to span views with
	// differing source positions (checked chains require a shared Pos so
	// one slot serves every error). emitExact never produces these: the
	// exact fallback path stays fully checked so faulting programs report
	// the reference error at the reference position.
	opViewU    // Dst = A[B] sub-view, no rank/bounds check
	opLdIdxIU  // Dst = A[B], proven 1-D load, integer/bool element
	opLdIdxFU  // Dst = A[B], float element
	opStIdxU   // A[B] = C, proven 1-D store
	opLdIdx2IU // Dst = A[B][C], proven rank-2 load
	opLdIdx2FU
	opStIdx2U // A[B][C] = Dst
	opLdIdxNIU
	opLdIdxNFU
	opStIdxNU
	opDivIU // Dst = A / B, divisor proven nonzero
	opRemIU // Dst = A % B, divisor proven nonzero

	// Exact-block ops. Blocks with calls or allocations compile to
	// unfused 1:1 bytecode replayed by execExact with per-instruction
	// accounting. opCall's A is the callee's function index; opAlloc's A
	// is the element kind; both read their C argument registers from
	// FuncCode.IdxRegs[B:B+C].
	opCall
	opAlloc

	// Builtins (specialized; print/rand stay fast-path eligible outside
	// HCPA because they touch no shadow state).
	opSqrt
	opFabs
	opFloor
	opExp
	opLog
	opSin
	opCos
	opPow
	opAbsI
	opMinI
	opMaxI
	opMinF
	opMaxF
	opRand
	opFrand
	opSrand
	opDim // Dst = dim(A, B), bounds-checked at Pos
	opPrintStr
	opPrintValI
	opPrintValF
	opPrintValB
	opPrintNl

	// Terminators.
	opBr      // branch on A != 0 to Edge0 else Edge1
	opJump    // to Edge0
	opRetVal  // return A
	opRetVoid // return
	// opEndBlk closes every fast block that dangles without a terminator
	// (the function ends there). With it, every fast block's bytecode ends
	// in an opcode that exits the dispatch loop, so the loop needs no
	// per-instruction end-of-block bounds check. Synthetic: counts no step
	// and no work.
	opEndBlk
)

var opNames = [...]string{
	opNop:  "nop",
	opAddI: "add.i", opSubI: "sub.i", opMulI: "mul.i", opDivI: "div.i",
	opRemI: "rem.i", opAndI: "and.i", opOrI: "or.i",
	opAddF: "add.f", opSubF: "sub.f", opMulF: "mul.f", opDivF: "div.f",
	opCmpI: "cmp.i", opCmpF: "cmp.f",
	opNegI: "neg.i", opNegF: "neg.f", opNot: "not",
	opConvIF: "conv.if", opConvFI: "conv.fi",
	opGlobal: "global", opView: "view", opLoadI: "load.i", opLoadF: "load.f",
	opStore:  "store",
	opBrCmpI: "br.cmp.i", opBrCmpF: "br.cmp.f",
	opIncCmpBrI: "inc.cmp.br.i", opDecCmpBrI: "dec.cmp.br.i",
	opIncJmpI: "inc.jmp.i", opDecJmpI: "dec.jmp.i",
	opLdIdxI: "ldidx.i", opLdIdxF: "ldidx.f", opStIdx: "stidx",
	opLdIdx2I: "ldidx2.i", opLdIdx2F: "ldidx2.f", opStIdx2: "stidx2",
	opLdIdxNI: "ldidxn.i", opLdIdxNF: "ldidxn.f", opStIdxN: "stidxn",
	opViewU: "view.u", opLdIdxIU: "ldidx.i.u", opLdIdxFU: "ldidx.f.u",
	opStIdxU: "stidx.u", opLdIdx2IU: "ldidx2.i.u", opLdIdx2FU: "ldidx2.f.u",
	opStIdx2U: "stidx2.u", opLdIdxNIU: "ldidxn.i.u", opLdIdxNFU: "ldidxn.f.u",
	opStIdxNU: "stidxn.u", opDivIU: "div.i.u", opRemIU: "rem.i.u",
	opCall: "call", opAlloc: "alloc",
	opSqrt: "sqrt", opFabs: "fabs", opFloor: "floor", opExp: "exp",
	opLog: "log", opSin: "sin", opCos: "cos", opPow: "pow",
	opAbsI: "abs.i", opMinI: "min.i", opMaxI: "max.i", opMinF: "min.f", opMaxF: "max.f",
	opRand: "rand", opFrand: "frand", opSrand: "srand", opDim: "dim",
	opPrintStr: "printstr", opPrintValI: "printval.i", opPrintValF: "printval.f",
	opPrintValB: "printval.b", opPrintNl: "printnl",
	opBr: "br", opJump: "jump", opRetVal: "ret", opRetVoid: "ret.void",
	opEndBlk: "endblk",
}

func (o opcode) String() string { return opNames[o] }

// Ins is one flat VM instruction. Operands A/B/C and Dst index the call's
// register file; the constant pool occupies indexes [ConstBase, NumRegs)
// of that file, so constant operands need no tag bit or branch. Pos is the
// source byte offset used for runtime errors.
type Ins struct {
	Op      opcode
	Dst     int32
	A, B, C int32
	Pos     int32
}

// termKind classifies a block's terminator for the dispatch loop.
type termKind uint8

// Terminator kinds.
const (
	termNone termKind = iota // unterminated block: falls off the function
	termBr
	termJump
	termRet
)

// arr is a (possibly partial) view into the simulated heap; identical in
// meaning to the reference interpreter's array value, but pointer-free
// and packed to 16 bytes (so val is exactly 32): the dimension vector
// lives in the machine's dims arena at [doff, doff+rank), watermark-freed
// with the heap at call exit. A pointer-free register file needs no GC
// write barriers on the clears, copies, and phi moves of the dispatch hot
// path, and pooled register files are never scanned.
type arr struct {
	base uint64
	doff int32
	rank int16
	elem uint8 // ast.BasicKind
}

// val is a VM runtime value (I doubles as bool storage, exactly as in the
// reference interpreter).
type val struct {
	i int64
	f float64
	a arr
}

// BBlock is the compiled form of one basic block.
type BBlock struct {
	IR *ir.Block
	// Start/End delimit the block's instructions in FuncCode.Code
	// (End exclusive). NeedsSlow blocks carry no bytecode (Start==End==-1).
	Start, End int32
	// NSteps counts the block's IR instructions after the phis (body +
	// terminator), i.e. the step-counter increment of one execution.
	NSteps uint32
	// LatSum is the summed ir latency of those instructions — the plain
	// work accrual of one check-free execution.
	LatSum uint64
	// NeedsSlow marks blocks that always take a per-instruction path:
	// calls (the callee perturbs the step counter mid-block) and array
	// allocations (they can fail the heap cap mid-block, and partial
	// results must be exact prefixes).
	NeedsSlow bool
	// Exact marks NeedsSlow blocks whose Start/End range holds unfused
	// 1:1 bytecode for execExact (per-instruction budget/liveness/work,
	// register-indexed dispatch). Non-exact NeedsSlow blocks — unknown
	// builtins, degenerate control flow — carry no bytecode and always
	// take the execSlow reference walk, as does HCPA mode (which needs
	// per-IR shadow Steps).
	Exact bool
	// Tpl is the batched HCPA template; nil when the block touches shadow
	// state per instruction (loads/stores), performs IO/RNG, or returns.
	Tpl *kremlib.BlockTemplate
	// HasPush/PopAt: the branch pushes a control-dependence entry popped
	// at PopAt (precompiled from the instrumentation tables).
	HasPush bool
	PopAt   *ir.Block
	Term    termKind
	// Edge0/Edge1 index FuncCode.Edges: the taken/else successor edges.
	Edge0, Edge1 int32
}

// Move copies operand Src (register-file index) to phi register Dst on an
// edge. The moves of one edge are a parallel copy: sources are gathered
// against the pre-state before any destination is written.
type Move struct {
	Dst, Src int32
}

// Edge is one precompiled CFG edge: where it lands, the phi moves and
// shadow Steps it performs, and the region enter/exit/iterate events it
// fires — everything interp recomputes per traversal, resolved once.
type Edge struct {
	Target  int32 // block index in FuncCode.Blocks
	PredIdx int32 // incoming-predecessor index at the target (phi selector)
	NPhis   uint32
	Moves   []Move
	Phis    []*ir.Instr // all phis at the target, in order (HCPA Steps)
	// Region events (mirrors regions.EdgeEvents with Exit flattened to a
	// count — the interpreter only ranges over it).
	NExit   int32
	Iterate *regions.Region
	Enter   []*regions.Region
}

// GlobalSeed records a register that is preloaded with the descriptor of
// module global Global at call entry (see FuncCode.GlobalSeeds).
type GlobalSeed struct {
	Reg    int32
	Global int32
}

// FuncCode is one compiled function.
type FuncCode struct {
	F      *ir.Func
	Blocks []BBlock
	Code   []Ins
	Edges  []Edge
	// Consts is the constant pool, materialized into registers
	// [ConstBase, NumRegs) at call entry.
	Consts []val
	Strs   []string // printstr literals
	// IdxRegs holds the index-register lists of rank-3+ fused accesses
	// and the argument/dimension register lists of exact-block
	// opCall/opAlloc (all slice it via their B/C operands).
	IdxRegs []int32
	// Lat is the per-pc IR latency, aligned with Code; meaningful only
	// inside exact blocks, where execExact accrues work per instruction.
	Lat []uint32
	// GlobalSeeds lists registers preloaded with global descriptors at
	// call entry. Global descriptors never change after startup
	// allocation, so opGlobal instructions in fast blocks are elided and
	// their result registers seeded once per call instead of rewritten
	// on every loop iteration.
	GlobalSeeds []GlobalSeed
	ConstBase   int32 // == F.NumValues()
	NumRegs     int32
	// Root is the function's region (entered per call in profiled modes).
	Root *regions.Region
}

// Program is a compiled module: one FuncCode per IR function.
type Program struct {
	Mod    *ir.Module
	Prog   *regions.Program
	Funcs  []*FuncCode
	ByFunc map[*ir.Func]*FuncCode
}
