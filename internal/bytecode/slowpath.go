package bytecode

import (
	"fmt"
	"math"

	"kremlin/internal/ast"
	"kremlin/internal/inccache"
	"kremlin/internal/interp"
	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/limits"
	"kremlin/internal/shadow"
)

// execSlow runs one block's body per IR instruction, mirroring the
// reference interpreter statement for statement: the step counter, budget
// check, liveness poll, work accrual, KremLib Step placement, and error
// text/position all match interp exactly. Blocks take this path when they
// contain calls, allocations, or degenerate control flow (NeedsSlow), when
// the remaining budget or an imminent liveness poll demands per-instruction
// checks, or in HCPA mode when the block has no batched template.
//
// The final value of next (last branch executed wins, as in the reference
// loop) maps onto the block's precompiled edges; a nil next ends the
// function.
func (m *machine) execSlow(fc *FuncCode, regs []val, b *BBlock, fs *kremlib.FrameState) (int32, val, bool, error) {
	blk := b.IR
	nPhis := 0
	for _, ins := range blk.Instrs {
		if ins.Op != ir.OpPhi {
			break
		}
		nPhis++
	}

	var next *ir.Block
	var retVal val
	returned := false
	for _, ins := range blk.Instrs[nPhis:] {
		m.steps++
		if m.steps > m.limit {
			return 0, val{}, false, limits.Budget(m.limit, m.steps)
		}
		if m.steps&limits.LiveCheckMask == 0 {
			if err := m.checkLive(); err != nil {
				return 0, val{}, false, err
			}
		}
		if m.cfg.Mode != interp.HCPA {
			m.work += ins.Latency()
		}

		switch ins.Op {
		case ir.OpParam:
			// Value seeded at call; shadow vec seeded at frame setup.
			continue
		case ir.OpBin:
			v, err := m.binop(regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.ID] = v
		case ir.OpNeg:
			x := m.value(regs, ins.Args[0])
			if ins.Typ.Elem == ast.Float {
				regs[ins.ID] = val{f: -x.f}
			} else {
				regs[ins.ID] = val{i: -x.i}
			}
		case ir.OpNot:
			x := m.value(regs, ins.Args[0])
			regs[ins.ID] = val{i: 1 - x.i}
		case ir.OpConvert:
			x := m.value(regs, ins.Args[0])
			if ins.Typ.Elem == ast.Float {
				regs[ins.ID] = val{f: float64(x.i)}
			} else {
				regs[ins.ID] = val{i: int64(x.f)}
			}
		case ir.OpAllocArray:
			v, err := m.allocArray(regs, ins)
			if err != nil {
				return 0, val{}, false, err
			}
			regs[ins.ID] = v
		case ir.OpGlobal:
			regs[ins.ID] = m.globalVals[ins.Global.Index]
		case ir.OpView:
			a := m.value(regs, ins.Args[0]).a
			idx := m.value(regs, ins.Args[1]).i
			if a.rank == 0 {
				return 0, val{}, false, m.errAt(ins.Pos, "index of non-array value")
			}
			if idx < 0 || idx >= m.dimArena[a.doff] {
				return 0, val{}, false, m.errAt(ins.Pos, "index %d out of range [0,%d)", idx, m.dimArena[a.doff])
			}
			stride := int64(1)
			for k := a.doff + 1; k < a.doff+int32(a.rank); k++ {
				stride *= m.dimArena[k]
			}
			regs[ins.ID] = val{a: arr{base: a.base + uint64(idx*stride), doff: a.doff + 1, rank: a.rank - 1, elem: a.elem}}
		case ir.OpLoad:
			cell := m.value(regs, ins.Args[0]).a
			bits := m.heap[cell.base-interp.HeapBase]
			if ins.Typ.Elem == ast.Float {
				regs[ins.ID] = val{f: math.Float64frombits(bits)}
			} else {
				regs[ins.ID] = val{i: int64(bits)}
			}
			if fs != nil {
				m.rt.Step(fs, ins, cell.base, -1)
			}
			continue
		case ir.OpStore:
			cell := m.value(regs, ins.Args[0]).a
			v := m.value(regs, ins.Args[1])
			var bits uint64
			if cell.elem == uint8(ast.Float) {
				bits = math.Float64bits(v.f)
			} else {
				bits = uint64(v.i)
			}
			m.heap[cell.base-interp.HeapBase] = bits
			if fs != nil {
				m.rt.Step(fs, ins, cell.base, -1)
			}
			continue
		case ir.OpCall:
			if err := m.doCall(regs, ins, fs); err != nil {
				return 0, val{}, false, err
			}
			continue
		case ir.OpBuiltin:
			if err := m.builtin(regs, ins); err != nil {
				return 0, val{}, false, err
			}
		case ir.OpBr:
			cond := m.value(regs, ins.Args[0])
			if cond.i != 0 {
				next = ins.Targets[0]
			} else {
				next = ins.Targets[1]
			}
			if fs != nil {
				vec := m.rt.Step(fs, ins, 0, -1)
				if b.HasPush {
					m.rt.PushCtrl(fs, blk, b.PopAt, vec)
				}
			}
			continue
		case ir.OpJump:
			next = ins.Targets[0]
			if fs != nil {
				m.rt.Step(fs, ins, 0, -1)
			}
			continue
		case ir.OpRet:
			if len(ins.Args) > 0 {
				retVal = m.value(regs, ins.Args[0])
			}
			returned = true
			if fs != nil {
				m.rt.Step(fs, ins, 0, -1)
			}
		default:
			return 0, val{}, false, m.errAt(ins.Pos, "unknown opcode %v", ins.Op)
		}
		if fs != nil && ins.Op != ir.OpRet {
			m.rt.Step(fs, ins, 0, -1)
		}
		if returned {
			break
		}
	}

	if returned {
		return -1, retVal, true, nil
	}
	if next == nil {
		return -1, val{}, false, nil
	}
	t := blk.Terminator()
	if t != nil && len(t.Targets) > 0 {
		if next == t.Targets[0] {
			return b.Edge0, val{}, false, nil
		}
		if t.Op == ir.OpBr && next == t.Targets[1] {
			return b.Edge1, val{}, false, nil
		}
	}
	// Unreachable for verified code (the verifier rejects branches that are
	// not the block's terminator); degrade to ending the function.
	return -1, val{}, false, nil
}

func (m *machine) doCall(regs []val, ins *ir.Instr, fs *kremlib.FrameState) error {
	if cap(m.argScratch) < len(ins.Args) {
		m.argScratch = make([]val, len(ins.Args))
	}
	args := m.argScratch[:len(ins.Args)]
	for i, a := range ins.Args {
		args[i] = m.value(regs, a)
	}
	var argVecs []shadow.Vec
	if fs != nil {
		m.rt.Step(fs, ins, 0, -1)
		argVecs = make([]shadow.Vec, len(ins.Args))
		for i, a := range ins.Args {
			if ai, ok := a.(*ir.Instr); ok {
				argVecs[i] = fs.Regs.Get(ai.ID)
			}
		}
	}
	var rec *inccache.Recording
	sess := m.cfg.Cache
	if sess != nil && fs != nil && sess.Cacheable(ins.Callee) {
		bits := vmArgBits(ins.Callee, args)
		if hit, ok := sess.TrySkip(ins.Callee, ins, fs, bits, argVecs, m.steps, m.limit, m.heapTop, m.heapCap); ok {
			m.steps += hit.Steps
			if p := m.heapTop + hit.PeakHeap; p > m.heapPeak {
				m.heapPeak = p
			}
			regs[ins.ID] = vmValFromBits(ins.Callee.Ret, hit.RetBits)
			return nil
		}
		rec = sess.BeginRecord(ins.Callee, bits, m.steps)
	}
	savedPeak := m.heapPeak
	if rec != nil {
		// Track the extent's own heap high-water mark so the record can
		// reproduce heap-cap failures exactly on replay.
		m.heapPeak = m.heapTop
	}
	ret, retVec, err := m.call(m.p.ByFunc[ins.Callee], args, argVecs, fs)
	if err != nil {
		return err
	}
	if rec != nil {
		sess.EndRecord(rec, m.steps, vmRetBits(ins.Callee.Ret, ret), retVec, m.heapPeak-m.heapTop)
		if savedPeak > m.heapPeak {
			m.heapPeak = savedPeak
		}
	}
	regs[ins.ID] = ret
	if fs != nil {
		m.rt.FinishCall(fs, ins, retVec)
	}
	return nil
}

// vmArgBits canonicalizes scalar call arguments for cache keying,
// bit-for-bit the reference interpreter's callArgBits.
func vmArgBits(f *ir.Func, args []val) []uint64 {
	bits := make([]uint64, len(f.Params))
	for i, p := range f.Params {
		if i >= len(args) {
			break
		}
		if p.Typ.Elem == ast.Float {
			bits[i] = math.Float64bits(args[i].f)
		} else {
			bits[i] = uint64(args[i].i)
		}
	}
	return bits
}

func vmValFromBits(ret ast.BasicKind, bits uint64) val {
	if ret == ast.Float {
		return val{f: math.Float64frombits(bits)}
	}
	return val{i: int64(bits)}
}

func vmRetBits(ret ast.BasicKind, v val) uint64 {
	if ret == ast.Float {
		return math.Float64bits(v.f)
	}
	return uint64(v.i)
}

func (m *machine) value(regs []val, v ir.Value) val {
	switch v := v.(type) {
	case *ir.Instr:
		return regs[v.ID]
	case *ir.ConstInt:
		return val{i: v.V}
	case *ir.ConstFloat:
		return val{f: v.V}
	case *ir.ConstBool:
		if v.V {
			return val{i: 1}
		}
		return val{}
	}
	return val{}
}

func (m *machine) binop(regs []val, ins *ir.Instr) (val, error) {
	x := m.value(regs, ins.Args[0])
	y := m.value(regs, ins.Args[1])
	isFloat := ins.Args[0].Type().Elem == ast.Float
	switch ins.Bin {
	case ir.BinAdd:
		if isFloat {
			return val{f: x.f + y.f}, nil
		}
		return val{i: x.i + y.i}, nil
	case ir.BinSub:
		if isFloat {
			return val{f: x.f - y.f}, nil
		}
		return val{i: x.i - y.i}, nil
	case ir.BinMul:
		if isFloat {
			return val{f: x.f * y.f}, nil
		}
		return val{i: x.i * y.i}, nil
	case ir.BinDiv:
		if isFloat {
			return val{f: x.f / y.f}, nil
		}
		if y.i == 0 {
			return val{}, m.errAt(ins.Pos, "integer division by zero")
		}
		return val{i: x.i / y.i}, nil
	case ir.BinRem:
		if y.i == 0 {
			return val{}, m.errAt(ins.Pos, "integer modulo by zero")
		}
		return val{i: x.i % y.i}, nil
	case ir.BinAnd:
		return val{i: x.i & y.i}, nil
	case ir.BinOr:
		return val{i: x.i | y.i}, nil
	}
	var lt, eq bool
	if isFloat {
		lt, eq = x.f < y.f, x.f == y.f
	} else {
		lt, eq = x.i < y.i, x.i == y.i
	}
	if cmpRes(lt, eq, ins.Bin) {
		return val{i: 1}, nil
	}
	return val{}, nil
}

func (m *machine) allocArray(regs []val, ins *ir.Instr) (val, error) {
	doff := int32(len(m.dimArena))
	total := int64(1)
	for i, a := range ins.Args {
		d := m.value(regs, a).i
		if d <= 0 {
			m.dimArena = m.dimArena[:doff]
			return val{}, m.errAt(ins.Pos, "array dimension %d must be positive, got %d", i, d)
		}
		m.dimArena = append(m.dimArena, d)
		total *= d
		if total > interp.MaxArrayElems {
			m.dimArena = m.dimArena[:doff]
			return val{}, m.errAt(ins.Pos, "array too large (%d elements)", total)
		}
	}
	base, err := m.alloc(total)
	if err != nil {
		m.dimArena = m.dimArena[:doff]
		return val{}, err
	}
	return val{a: arr{base: base, doff: doff, rank: int16(len(ins.Args)), elem: uint8(ins.Typ.Elem)}}, nil
}

func (m *machine) builtin(regs []val, ins *ir.Instr) error {
	arg := func(i int) val { return m.value(regs, ins.Args[i]) }
	switch ins.Builtin {
	case "sqrt":
		regs[ins.ID] = val{f: math.Sqrt(arg(0).f)}
	case "fabs":
		regs[ins.ID] = val{f: math.Abs(arg(0).f)}
	case "floor":
		regs[ins.ID] = val{f: math.Floor(arg(0).f)}
	case "exp":
		regs[ins.ID] = val{f: math.Exp(arg(0).f)}
	case "log":
		regs[ins.ID] = val{f: math.Log(arg(0).f)}
	case "sin":
		regs[ins.ID] = val{f: math.Sin(arg(0).f)}
	case "cos":
		regs[ins.ID] = val{f: math.Cos(arg(0).f)}
	case "pow":
		regs[ins.ID] = val{f: math.Pow(arg(0).f, arg(1).f)}
	case "abs":
		x := arg(0).i
		if x < 0 {
			x = -x
		}
		regs[ins.ID] = val{i: x}
	case "min", "max":
		x, y := arg(0), arg(1)
		if ins.Typ.Elem == ast.Float {
			if (ins.Builtin == "min") == (x.f < y.f) {
				regs[ins.ID] = x
			} else {
				regs[ins.ID] = y
			}
		} else {
			if (ins.Builtin == "min") == (x.i < y.i) {
				regs[ins.ID] = x
			} else {
				regs[ins.ID] = y
			}
		}
	case "rand":
		regs[ins.ID] = val{i: int64(m.nextRand() >> 1)}
	case "frand":
		regs[ins.ID] = val{f: float64(m.nextRand()>>11) / float64(1<<53)}
	case "srand":
		m.rng = uint64(arg(0).i)*2862933555777941757 + 3037000493
	case "dim":
		a := arg(0).a
		k := arg(1).i
		if k < 0 || k >= int64(a.rank) {
			return m.errAt(ins.Pos, "dim index %d out of range", k)
		}
		regs[ins.ID] = val{i: m.dimArena[a.doff+int32(k)]}
	case "printstr":
		m.printPiece(ins.Aux)
	case "printval":
		v := arg(0)
		switch ins.Args[0].Type().Elem {
		case ast.Float:
			m.printPiece(fmt.Sprintf("%g", v.f))
		case ast.Bool:
			m.printPiece(fmt.Sprintf("%t", v.i != 0))
		default:
			m.printPiece(fmt.Sprintf("%d", v.i))
		}
	case "printnl":
		if m.out != nil {
			fmt.Fprintln(m.out)
		}
		m.printedAny = false
	default:
		return m.errAt(ins.Pos, "unknown builtin %q", ins.Builtin)
	}
	return nil
}
