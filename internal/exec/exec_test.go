package exec_test

import (
	"testing"
	"testing/quick"

	"kremlin"
	"kremlin/internal/eval"
	. "kremlin/internal/exec"
	"kremlin/internal/hcpa"
	"kremlin/internal/planner"
	"kremlin/internal/regions"
)

const simSrc = `
float a[400];
float b[400];
float total;

void fill(int n) {
	for (int i = 0; i < n; i++) {
		a[i] = float(i % 31) * 0.5;
	}
}
void transform(int n) {
	for (int i = 0; i < n; i++) {
		b[i] = a[i] * a[i] + 1.0;
	}
}
void chain(int n) {
	for (int i = 1; i < n; i++) {
		b[i] = b[i] + b[i-1] * 0.01;
	}
}
void reduce(int n) {
	for (int i = 0; i < n; i++) {
		total = total + b[i];
	}
}
int main() {
	fill(400);
	transform(400);
	chain(400);
	reduce(400);
	print(total);
	return 0;
}
`

func summary(t *testing.T) *hcpa.Summary {
	t.Helper()
	prog, err := kremlin.Compile("sim.kr", simSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Summarize(prof)
}

func openmpPlan(t *testing.T, sum *hcpa.Summary) []int {
	t.Helper()
	return eval.PlanIDs(planner.Make(sum, planner.OpenMP()))
}

func TestEmptyPlanIsSerial(t *testing.T) {
	sum := summary(t)
	r := Simulate(sum, nil, Default32())
	if r.Speedup < 0.999 || r.Speedup > 1.001 {
		t.Errorf("empty plan speedup = %f, want 1", r.Speedup)
	}
	if r.ParTime != r.SerialTime {
		t.Errorf("par %f != serial %f", r.ParTime, r.SerialTime)
	}
	if r.ParCoverage != 0 {
		t.Errorf("coverage = %f", r.ParCoverage)
	}
}

func TestSingleCoreNeverSpeedsUp(t *testing.T) {
	sum := summary(t)
	plan := PlanIDs(openmpPlan(t, sum)...)
	r := Simulate(sum, plan, Default32().WithCores(1))
	if r.Speedup > 1.0001 {
		t.Errorf("1-core speedup = %f", r.Speedup)
	}
}

func TestGoodPlanSpeedsUp(t *testing.T) {
	sum := summary(t)
	plan := PlanIDs(openmpPlan(t, sum)...)
	r := BestConfig(sum, plan, Default32())
	if r.Speedup < 1.5 {
		t.Errorf("plan speedup = %f, want > 1.5", r.Speedup)
	}
	if r.ParCoverage <= 0 || r.ParCoverage > 1 {
		t.Errorf("coverage = %f", r.ParCoverage)
	}
}

func TestParallelizationNeverForced(t *testing.T) {
	// Selecting every region (even serial ones) must never be slower than
	// serial: the simulator falls back when overheads lose.
	sum := summary(t)
	all := map[int]bool{}
	for _, st := range sum.Executed {
		if st.Region.Kind == regions.LoopRegion {
			all[st.Region.ID] = true
		}
	}
	r := BestConfig(sum, all, Default32())
	if r.Speedup < 1 {
		t.Errorf("everything-plan speedup = %f, want >= 1", r.Speedup)
	}
}

func TestMorePlanNeverHurtsUnderBestConfig(t *testing.T) {
	sum := summary(t)
	ids := openmpPlan(t, sum)
	m := Default32()
	prev := 0.0
	cur := map[int]bool{}
	for _, id := range ids {
		cur[id] = true
		r := BestConfig(sum, cur, m)
		if r.Speedup < prev-1e-9 {
			t.Errorf("adding region %d decreased speedup %f -> %f", id, prev, r.Speedup)
		}
		prev = r.Speedup
	}
}

func TestMarginalSeriesMonotone(t *testing.T) {
	sum := summary(t)
	ids := openmpPlan(t, sum)
	series := MarginalSeries(sum, ids, Default32())
	if len(series) != len(ids) {
		t.Fatalf("series length %d != plan %d", len(series), len(ids))
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1]-1e-9 {
			t.Errorf("cumulative reduction decreased at %d: %v", i, series)
		}
	}
	for _, v := range series {
		if v < 0 || v > 100 {
			t.Errorf("reduction %f out of range", v)
		}
	}
}

func TestBestConfigAtLeastSerial(t *testing.T) {
	sum := summary(t)
	plan := PlanIDs(openmpPlan(t, sum)...)
	best := BestConfig(sum, plan, Default32())
	if best.Speedup < 1 {
		t.Errorf("best config slower than serial: %f", best.Speedup)
	}
	for p := 1; p <= 32; p *= 2 {
		r := Simulate(sum, plan, Default32().WithCores(p))
		if r.ParTime < best.ParTime-1e-9 {
			t.Errorf("BestConfig missed cores=%d (%f < %f)", p, r.ParTime, best.ParTime)
		}
	}
}

func TestNestedSelectionDoesNotMultiply(t *testing.T) {
	// OpenMP semantics: selecting both a loop and its inner loop must not
	// beat selecting just the outer loop by more than noise.
	sum := summary(t)
	var outer, inner int
	found := false
	for _, st := range sum.Executed {
		if st.Region.Kind == regions.LoopRegion && st.Region.Func.Name == "transform" {
			outer = st.Region.ID
			for _, c := range st.Region.Children { // body
				for _, cc := range c.Children {
					if cc.Kind == regions.LoopRegion {
						inner = cc.ID
						found = true
					}
				}
			}
		}
	}
	_ = inner
	if !found {
		// transform has no inner loop; synthesize with outer only.
		inner = outer
	}
	m := Default32()
	solo := Simulate(sum, PlanIDs(outer), m)
	both := Simulate(sum, PlanIDs(outer, inner), m)
	if both.ParTime < solo.ParTime*0.99 {
		t.Errorf("nested selection multiplied speedup: %f vs %f", both.ParTime, solo.ParTime)
	}
}

// TestSimulatorSanityProperty: for random machine parameters, simulated
// parallel time stays within (0, serial].
func TestSimulatorSanityProperty(t *testing.T) {
	sum := summary(t)
	plan := PlanIDs(openmpPlan(t, sum)...)
	check := func(fork, sched uint16, cores uint8) bool {
		m := Machine{
			Cores:           int(cores%64) + 1,
			ForkCost:        float64(fork),
			SchedCost:       float64(sched) / 16,
			ReductionCost:   float64(fork) / 8,
			SyncCost:        float64(sched) / 8,
			MigrationFactor: float64(cores%10) / 10,
		}
		r := Simulate(sum, plan, m)
		return r.ParTime > 0 && r.ParTime <= r.SerialTime*1.0001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// costSummary builds a summary for a program dominated by one loop of the
// given character, for cost-model assertions.
func costSummary(t *testing.T, body string) *hcpa.Summary {
	t.Helper()
	prog, err := kremlin.Compile("cost.kr", body)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Summarize(prof)
}

func loopID(t *testing.T, sum *hcpa.Summary, fn string) int {
	t.Helper()
	for _, st := range sum.Executed {
		if st.Region.Func.Name == fn && st.Region.Kind == regions.LoopRegion &&
			st.Region.Parent.Kind == regions.FuncRegion {
			return st.Region.ID
		}
	}
	t.Fatalf("no loop in %s", fn)
	return -1
}

// TestReductionCostCharged: a reduction region pays the per-core reduction
// overhead — raising ReductionCost must slow it down.
func TestReductionCostCharged(t *testing.T) {
	sum := costSummary(t, `
float a[2000];
float total;
void f() {
	for (int i = 0; i < 2000; i++) { total = total + a[i]; }
}
int main() { f(); print(total); return 0; }`)
	plan := PlanIDs(loopID(t, sum, "f"))
	cheap := Default32()
	dear := cheap
	dear.ReductionCost = cheap.ReductionCost * 40
	rc := Simulate(sum, plan, cheap)
	rd := Simulate(sum, plan, dear)
	if rd.ParTime <= rc.ParTime {
		t.Errorf("reduction cost not charged: %f vs %f", rd.ParTime, rc.ParTime)
	}
}

// TestSyncCostChargedForDOACROSS: a non-DOALL parallel loop pays
// per-iteration synchronization; a DOALL one does not.
func TestSyncCostChargedForDOACROSS(t *testing.T) {
	sum := costSummary(t, `
float g[64][64];
void wave() {
	for (int i = 1; i < 64; i++) {
		for (int j = 1; j < 64; j++) {
			g[i][j] = (g[i-1][j] + g[i][j-1]) * 0.5;
		}
	}
}
int main() { g[0][0] = 1.0; wave(); print(g[63][63]); return 0; }`)
	id := loopID(t, sum, "wave")
	if st := sum.ByID(id); st.DOALL {
		t.Fatal("wavefront misclassified DOALL")
	}
	plan := PlanIDs(id)
	base := Default32()
	noSync := base
	noSync.SyncCost = 0
	withSync := Simulate(sum, plan, base)
	without := Simulate(sum, plan, noSync)
	if withSync.ParTime <= without.ParTime {
		t.Errorf("DOACROSS sync cost not charged: %f vs %f", withSync.ParTime, without.ParTime)
	}
}

// TestMigrationPenaltyFadesWithCoverage: with a bigger parallel fraction,
// the per-region NUMA penalty shrinks (the paper's Figure-7 noise source).
func TestMigrationPenaltyFades(t *testing.T) {
	sum := summary(t)
	ids := openmpPlan(t, sum)
	if len(ids) < 2 {
		t.Skip("plan too small")
	}
	m := Default32()
	// Time attributed to region ids[0] alone vs. with everything else also
	// parallel: the shared migration penalty drops in the second case, so
	// total time with the full plan is at most the sum of parts.
	solo := Simulate(sum, PlanIDs(ids[0]), m)
	full := Simulate(sum, PlanIDs(ids...), m)
	if full.ParCoverage <= solo.ParCoverage {
		t.Fatalf("coverage did not grow: %f vs %f", full.ParCoverage, solo.ParCoverage)
	}
	if full.ParTime >= solo.ParTime {
		t.Errorf("full plan (%f) not faster than single region (%f)", full.ParTime, solo.ParTime)
	}
}

// TestIdealSpeedupBoundsEverything: no plan on any core count beats the
// whole-program CPA bound.
func TestIdealSpeedupBound(t *testing.T) {
	sum := summary(t)
	bound := IdealSpeedup(sum)
	if bound < 1 {
		t.Fatalf("ideal bound %f < 1", bound)
	}
	all := map[int]bool{}
	for _, st := range sum.Executed {
		all[st.Region.ID] = true
	}
	r := BestConfig(sum, all, Default32())
	if r.Speedup > bound+1e-9 {
		t.Errorf("simulated speedup %f exceeds the CPA bound %f", r.Speedup, bound)
	}
}
