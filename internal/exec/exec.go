// Package exec simulates the parallel execution of a profiled program
// under a parallelization plan — the stand-in for the paper's 32-core AMD
// 8380 testbed. The simulator walks the compressed profile (children
// before parents, so one ascending pass over the alphabet suffices) and
// applies an OpenMP-like cost model: a parallelized region's instances run
// in max(cp, work/min(SP, P)) time plus fork/join, per-iteration
// scheduling, reduction, and DOACROSS-synchronization overheads, and a
// NUMA data-migration penalty that shrinks as more of the program runs
// parallel (the effect the paper observed: parallelizing later regions
// reduces migration, so marginal benefits can be noisy).
//
// Absolute times are in abstract work units; all of the paper's
// conclusions we reproduce are relative (plan A vs plan B on the same
// machine model), which the shared cost model preserves.
package exec

import (
	"math"

	"kremlin/internal/hcpa"
	"kremlin/internal/regions"
)

// Machine is the simulated target.
type Machine struct {
	Cores int
	// ForkCost is charged per parallel-region instance (thread team
	// start/join). It grows mildly with the core count.
	ForkCost float64
	// SchedCost is charged per scheduled iteration, amortized across cores.
	SchedCost float64
	// ReductionCost is charged per core per instance of a parallel region
	// containing a reduction.
	ReductionCost float64
	// SyncCost is charged per iteration of a DOACROSS (non-DOALL) parallel
	// region: cross-iteration synchronization.
	SyncCost float64
	// MigrationFactor scales the NUMA data-migration penalty on parallel
	// regions; the penalty fades as the parallel fraction of the program
	// grows.
	MigrationFactor float64
	// NestedParallel models a work-stealing runtime (Cilk++): parallel
	// regions compose, so a selected region keeps the (possibly already
	// parallel) times of its children instead of serializing below itself
	// as OpenMP does.
	NestedParallel bool
}

// Default32 models the paper's 32-core NUMA machine.
func Default32() Machine {
	return Machine{
		Cores:           32,
		ForkCost:        220,
		SchedCost:       2.5,
		ReductionCost:   45,
		SyncCost:        14,
		MigrationFactor: 0.35,
	}
}

// WithCores returns a copy of m with a different core count.
func (m Machine) WithCores(p int) Machine {
	m.Cores = p
	return m
}

// Result summarizes one simulated execution.
type Result struct {
	Cores      int
	SerialTime float64
	ParTime    float64
	Speedup    float64
	// ParCoverage is the fraction of serial work inside parallelized regions.
	ParCoverage float64
}

// Simulate runs the program of sum under the plan (region IDs chosen for
// parallelization) on machine m.
func Simulate(sum *hcpa.Summary, plan map[int]bool, m Machine) Result {
	dict := sum.Prof.Dict
	times := make([]float64, len(dict.Entries))

	// Parallel coverage for the migration model: work inside selected
	// regions that are not nested inside another selected region.
	parWork := coveredWork(sum, plan)
	serial := float64(sum.TotalWork)
	parCov := 0.0
	if serial > 0 {
		parCov = parWork / serial
	}
	migPenalty := 1 + m.MigrationFactor*(1-parCov)

	p := float64(m.Cores)
	for c, e := range dict.Entries {
		var childTime float64
		var nchild int64
		for _, k := range e.Children {
			childTime += float64(k.Count) * times[k.Char]
			nchild += k.Count
		}
		em := sum.Entries[c]
		self := float64(em.SelfWork)
		seq := self + childTime

		r := sum.Prog.Regions[e.StaticID]
		if !plan[r.ID] || m.Cores <= 1 {
			times[c] = seq
			continue
		}
		st := sum.ByID(r.ID)
		sp := em.SelfP
		if sp > p {
			sp = p
		}
		if sp < 1 {
			sp = 1
		}
		// OpenMP semantics: inside a parallel region, nested pragmas are
		// ineffective — everything below this region runs serial, so the
		// region's own serial time is its total work, not the (possibly
		// already-parallelized) child times. A work-stealing runtime
		// (NestedParallel) composes instead.
		inner := float64(e.Work)
		if m.NestedParallel {
			inner = seq
		}
		t := inner / sp
		if cp := float64(e.CP); t < cp {
			t = cp
		}
		// Overheads.
		t += m.ForkCost * (1 + 0.08*p)
		t += m.SchedCost * float64(nchild) / p
		if st != nil && st.HasReduction {
			t += m.ReductionCost * p
		}
		// DOACROSS synchronization: charged to loops whose iterations truly
		// overlap only partially. Reduction loops are not DOACROSS — their
		// carried dependence is handled by the reduction clause (charged
		// above), not per-iteration synchronization.
		if st != nil && !st.DOALL && !st.HasReduction && r.Kind == regions.LoopRegion {
			t += m.SyncCost * float64(nchild)
		}
		t *= migPenalty
		if t > seq {
			t = seq // parallelizing here would lose to the plan below; skip it
		}
		times[c] = t
	}

	var total float64
	for _, root := range sum.Prof.Roots {
		total += times[root]
	}
	// Physical floor: P cores can never beat serial/P, however the plan
	// composes (matters for nested work-stealing composition).
	if floor := serial / p; total < floor {
		total = floor
	}
	res := Result{
		Cores:       m.Cores,
		SerialTime:  serial,
		ParTime:     total,
		ParCoverage: parCov,
	}
	if total > 0 {
		res.Speedup = serial / total
	}
	return res
}

// coveredWork sums the work of outermost selected regions.
func coveredWork(sum *hcpa.Summary, plan map[int]bool) float64 {
	dict := sum.Prof.Dict
	// covered[c]: work within entry c that is inside some selected region.
	covered := make([]float64, len(dict.Entries))
	for c, e := range dict.Entries {
		r := sum.Prog.Regions[e.StaticID]
		if plan[r.ID] {
			covered[c] = float64(e.Work)
			continue
		}
		for _, k := range e.Children {
			covered[c] += float64(k.Count) * covered[k.Char]
		}
	}
	var w float64
	for _, root := range sum.Prof.Roots {
		w += covered[root]
	}
	return w
}

// BestConfig sweeps the paper's core configurations (1..32 by powers of
// two) and returns the best result, mirroring §6.1's methodology of
// reporting each version's best configuration.
func BestConfig(sum *hcpa.Summary, plan map[int]bool, m Machine) Result {
	best := Result{ParTime: math.Inf(1)}
	for pcount := 1; pcount <= m.Cores; pcount *= 2 {
		r := Simulate(sum, plan, m.WithCores(pcount))
		if r.ParTime < best.ParTime {
			best = r
		}
	}
	return best
}

// PlanIDs converts a list of region IDs into the set form Simulate expects.
func PlanIDs(ids ...int) map[int]bool {
	s := make(map[int]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// MarginalSeries applies the ordered region IDs one at a time and reports
// the cumulative time reduction (percent of serial time) after each step —
// the data behind the paper's Figure 7.
func MarginalSeries(sum *hcpa.Summary, order []int, m Machine) []float64 {
	out := make([]float64, len(order))
	cur := map[int]bool{}
	for i, id := range order {
		cur[id] = true
		r := BestConfig(sum, cur, m)
		out[i] = 100 * (1 - r.ParTime/r.SerialTime)
	}
	return out
}

// IdealSpeedup is the whole-program total-parallelism bound — work divided
// by the root critical path. No machine, no plan: the ceiling any
// parallelization of the observed execution could reach (the number
// classic CPA reports, and the upper bound Kismet-style predictors start
// from).
func IdealSpeedup(sum *hcpa.Summary) float64 {
	var cp float64
	for _, root := range sum.Prof.Roots {
		cp += float64(sum.Prof.Dict.Entries[root].CP)
	}
	if cp == 0 {
		return 1
	}
	return float64(sum.TotalWork) / cp
}
