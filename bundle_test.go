package kremlin_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/inccache"
	"kremlin/internal/planner"
)

// TestBundleRoundTrip pins the bundle contract: a Program reconstructed
// from EncodeBundle's bytes is observably identical to the original —
// same IR text, same program output, byte-identical serialized profile,
// same plan rendering, same vet verdicts, and the same incremental-cache
// content keys (so a warm inccache primed by source submissions hits for
// bundle submissions of the same program, and vice versa).
func TestBundleRoundTrip(t *testing.T) {
	cases := map[string]string{
		"tracking": bench.Tracking().Source,
		"cg":       bench.ByName("cg").Source,
		"is":       bench.ByName("is").Source,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			orig, err := kremlin.Compile(name+".kr", src)
			if err != nil {
				t.Fatal(err)
			}
			data := orig.EncodeBundle()
			if !kremlin.IsBundle(data) {
				t.Fatalf("EncodeBundle output not recognized by IsBundle")
			}
			dec, err := kremlin.CompileBundle(data)
			if err != nil {
				t.Fatalf("CompileBundle: %v", err)
			}

			if got, want := dec.Module.String(), orig.Module.String(); got != want {
				t.Fatalf("decoded IR differs from original:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}

			type obs struct {
				out     string
				profile []byte
				plan    string
				vet     string
			}
			observe := func(p *kremlin.Program) obs {
				var out bytes.Buffer
				prof, _, err := p.Profile(&kremlin.RunConfig{Out: &out})
				if err != nil {
					t.Fatal(err)
				}
				var pb bytes.Buffer
				if _, err := prof.WriteTo(&pb); err != nil {
					t.Fatal(err)
				}
				var vet bytes.Buffer
				for _, rep := range p.Vet.Loops {
					vet.WriteString(rep.Region.Label())
					vet.WriteString(" ")
					vet.WriteString(rep.Verdict.String())
					vet.WriteString("\n")
				}
				return obs{
					out:     out.String(),
					profile: pb.Bytes(),
					plan:    p.Plan(prof, planner.OpenMP()).Render(),
					vet:     vet.String(),
				}
			}
			a, bb := observe(orig), observe(dec)
			if a.out != bb.out {
				t.Errorf("program output differs:\n%q\nvs\n%q", a.out, bb.out)
			}
			if !bytes.Equal(a.profile, bb.profile) {
				t.Errorf("serialized profiles differ (%d vs %d bytes)", len(a.profile), len(bb.profile))
			}
			if a.plan != bb.plan {
				t.Errorf("plans differ:\n%s\nvs\n%s", a.plan, bb.plan)
			}
			if a.vet != bb.vet {
				t.Errorf("vet reports differ:\n%s\nvs\n%s", a.vet, bb.vet)
			}

			// Incremental-cache content keys must agree function by function.
			store, err := inccache.Open(filepath.Join(t.TempDir(), "cache"))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := store.Keys(dec.Regions), store.Keys(orig.Regions); !reflect.DeepEqual(got, want) {
				t.Errorf("inccache keys differ:\n%v\nvs\n%v", got, want)
			}
		})
	}
}

// TestBundleErrors pins the failure taxonomy: damaged or non-bundle bytes
// are parse-stage compile errors, and corruption at any byte never panics.
func TestBundleErrors(t *testing.T) {
	prog, err := kremlin.Compile("t.kr", "void main() { print(1); }")
	if err != nil {
		t.Fatal(err)
	}
	data := prog.EncodeBundle()

	if _, err := kremlin.CompileBundle([]byte("not a bundle")); err == nil {
		t.Fatal("CompileBundle accepted garbage")
	} else if kremlin.Classify(err) != kremlin.KindParse {
		t.Fatalf("garbage classified as %v, want parse", kremlin.Classify(err))
	}
	var ce *kremlin.CompileError
	if _, err := kremlin.CompileBundle(data[:len(data)/2]); !errors.As(err, &ce) {
		t.Fatalf("truncated bundle: got %v, want *CompileError", err)
	}

	// Single-byte corruption anywhere must be rejected (the checksum
	// trailer catches it) and must never panic.
	for off := 0; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if _, err := kremlin.CompileBundle(mut); err == nil {
			t.Fatalf("accepted bundle with corrupt byte at %d", off)
		}
	}
}
